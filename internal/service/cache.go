// Package service implements the fedschedd online admission-control daemon:
// a long-running HTTP server that holds a live constrained-deadline DAG task
// system and answers trial-admission requests with the full two-phase
// FEDCONS test. No constant speedup or capacity-augmentation bound exists
// for constrained-deadline federated scheduling (paper Example 2), so an
// online admission controller cannot substitute a cheap utilization
// threshold — it must run the real analysis on every request. The package
// therefore makes the real analysis cheap to re-run: Phase-1 MINPROCS
// results are memoized in a content-addressed cache keyed by core.TaskHash,
// so admitting or removing one task re-runs list scheduling only for DAGs
// the server has never analyzed before, while the cheap Phase-2 partition is
// always recomputed and every accepted state is audited with core.Verify
// before it is installed.
package service

import (
	"sync"

	"fedsched/internal/core"
	"fedsched/internal/listsched"
	"fedsched/internal/obs"
	"fedsched/internal/task"
)

// phase1Result is the platform-independent outcome of MINPROCS for one task:
// the minimum processor count μ* over an unbounded platform and its witness
// template, or infeasibility at any processor count. Bounding by the
// processors actually remaining happens at lookup time (μ* ≤ m_r), which is
// exactly equivalent to the paper's bounded scan because the scan order does
// not depend on m_r.
type phase1Result struct {
	feasible bool
	mu       int
	tmpl     *listsched.Schedule
}

// cacheEntry pairs a memoized result with the labeled task content it was
// computed from. Lookups compare content with task.SameAnalysisInput, so a
// hash collision (SHA or a residual canonicalization tie between isomorphic
// relabelings) degrades to a chained miss, never to a wrong answer.
type cacheEntry struct {
	tk  *task.DAGTask
	res phase1Result
}

// AnalysisCache is the content-addressed memo of Phase-1 analyses. It is
// safe for concurrent use; in the daemon all writes come from the single
// admission loop while reads may come from anywhere.
type AnalysisCache struct {
	mu      sync.Mutex
	entries map[core.Hash][]cacheEntry
	// hashes memoizes core.TaskHash per task object: the daemon re-analyzes
	// the same installed *DAGTask pointers on every admission, and canonical
	// hashing (WL refinement) is the dominant cost of a fully warm pass.
	// DAGTask contents are immutable by repo convention, so identity keying
	// is sound.
	hashes map[*task.DAGTask]core.Hash
	hits   int64
	misses int64
}

// NewAnalysisCache returns an empty cache.
func NewAnalysisCache() *AnalysisCache {
	return &AnalysisCache{
		entries: make(map[core.Hash][]cacheEntry),
		hashes:  make(map[*task.DAGTask]core.Hash),
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *AnalysisCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of memoized analyses.
func (c *AnalysisCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, chain := range c.entries {
		n += len(chain)
	}
	return n
}

// lookup returns the memoized result for tk, if any.
func (c *AnalysisCache) lookup(h core.Hash, tk *task.DAGTask) (phase1Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries[h] {
		if task.SameAnalysisInput(e.tk, tk) {
			c.hits++
			return e.res, true
		}
	}
	c.misses++
	return phase1Result{}, false
}

// store memoizes a freshly computed result.
func (c *AnalysisCache) store(h core.Hash, tk *task.DAGTask, res phase1Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[h] = append(c.entries[h], cacheEntry{tk: tk, res: res})
}

// minprocs returns the platform-independent MINPROCS outcome for tk under
// opt, computing and memoizing it on first sight. For the LS scan the
// platform bound passed to core.Minprocs is the DAG width: the scan caps
// there anyway, and (when len ≤ min(D,T)) it is guaranteed to succeed by
// μ = width, so the result is the true unbounded μ*. For the analytic rule
// the closed form is independent of the platform, so any large bound works.
// hashOf returns core.TaskHash(tk), memoized by task identity.
func (c *AnalysisCache) hashOf(tk *task.DAGTask) core.Hash {
	c.mu.Lock()
	h, ok := c.hashes[tk]
	c.mu.Unlock()
	if ok {
		return h
	}
	h = core.TaskHash(tk) // outside the lock: hashing large DAGs is the slow part
	c.mu.Lock()
	c.hashes[tk] = h
	c.mu.Unlock()
	return h
}

func (c *AnalysisCache) minprocs(tk *task.DAGTask, opt core.Options) phase1Result {
	res, _ := c.minprocsTraced(tk, opt, nil)
	return res
}

// prewarmed is one task's Phase-1 outcome as computed by prewarmPhase1,
// together with whether the memo already held it.
type prewarmed struct {
	res phase1Result
	hit bool
}

// prewarmPhase1 runs the Phase-1 memo lookups — and, on misses, the MINPROCS
// analyses — of sys's high-density tasks on a bounded worker pool, so a cold
// batch admission pays for its list-scheduling scans concurrently instead of
// one task at a time. Canonical hashing (the dominant cost of a warm pass) is
// parallelized too. Tasks are grouped by content hash and each group is
// processed in order by one worker, so duplicate-content tasks produce the
// same one-miss-then-hits accounting as the sequential path; only the
// interleaving of counter increments differs, never the totals. Returns nil
// (caller falls back to the sequential per-task path) when fewer than two
// tasks are high-density or par < 2.
func (c *AnalysisCache) prewarmPhase1(sys task.System, opt core.Options, par int) map[*task.DAGTask]prewarmed {
	var high []*task.DAGTask
	for _, tk := range sys {
		if tk.HighDensity() {
			high = append(high, tk)
		}
	}
	if len(high) < 2 || par < 2 {
		return nil
	}
	if par > len(high) {
		par = len(high)
	}

	// Pass 1: warm the per-object hash memo in parallel.
	runPool(par, len(high), func(i int) { c.hashOf(high[i]) })

	// Pass 2: group by content hash (first-seen order) and analyze each
	// group sequentially on its own worker.
	groups := make(map[core.Hash][]*task.DAGTask, len(high))
	var order []core.Hash
	for _, tk := range high {
		h := c.hashOf(tk)
		if _, seen := groups[h]; !seen {
			order = append(order, h)
		}
		groups[h] = append(groups[h], tk)
	}
	var mu sync.Mutex
	out := make(map[*task.DAGTask]prewarmed, len(high))
	runPool(par, len(order), func(i int) {
		for _, tk := range groups[order[i]] {
			res, hit := c.minprocsTraced(tk, opt, nil)
			mu.Lock()
			out[tk] = prewarmed{res: res, hit: hit}
			mu.Unlock()
		}
	})
	return out
}

// runPool executes fn(0..n-1) on a pool of `workers` goroutines.
func runPool(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// minprocsTraced is minprocs with an optional decision-trace span (recorded
// only on a miss, where the real scan runs) and a hit/miss report.
func (c *AnalysisCache) minprocsTraced(tk *task.DAGTask, opt core.Options, sp *obs.Span) (phase1Result, bool) {
	h := c.hashOf(tk)
	if res, ok := c.lookup(h, tk); ok {
		return res, true
	}
	var res phase1Result
	if opt.Minprocs == core.Analytic {
		res.mu, res.tmpl, res.feasible = core.MinprocsAnalyticTrace(tk, int(^uint(0)>>1), opt.Priority, sp)
	} else {
		res.mu, res.tmpl, res.feasible = core.MinprocsTrace(tk, tk.G.Width(), opt.Priority, sp)
	}
	c.store(h, tk, res)
	return res, false
}

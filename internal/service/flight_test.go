package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestFlightRecorderRejectionByteIdentity is the tentpole's core contract: a
// ?trace=1 rejection's inline trace and the flight recorder's retained copy
// at /debug/traces/{id} are the same bytes.
func TestFlightRecorderRejectionByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	c := ts.Client()

	if st, _, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri1"))); st != http.StatusOK {
		t.Fatalf("seed admit: %d", st)
	}
	status, body, hdr := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit?trace=1", admitBody(t, trijob("tri2")))
	if status != http.StatusConflict {
		t.Fatalf("expected rejection, got %d: %s", status, body)
	}
	traceID := hdr.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("rejection carries no X-Trace-Id")
	}
	var v struct {
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Trace) == 0 {
		t.Fatal("traced rejection has no inline trace")
	}

	status, got, _ := doJSON(t, c, http.MethodGet, ts.URL+"/debug/traces/"+traceID, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s = %d: %s", traceID, status, got)
	}
	var entry FlightEntry
	if err := json.Unmarshal(got, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.TraceID != traceID || entry.Op != "admit" || entry.Task != "tri2" || entry.Status != http.StatusConflict {
		t.Fatalf("retained entry = %+v", entry)
	}
	if entry.Sampled {
		t.Fatal("client-traced rejection must not be marked sampled")
	}
	if !bytes.Equal(entry.Trace, v.Trace) {
		t.Fatalf("retained trace differs from inline trace:\nretained: %s\ninline:   %s", entry.Trace, v.Trace)
	}
	if entry.LatencyNs <= 0 || entry.UnixNs <= 0 {
		t.Fatalf("entry missing timing: %+v", entry)
	}
}

// TestFlightRecorderRetainsUntracedRejections: a rejection nobody traced is
// still listed (metadata-only) — the post-hoc "why was this rejected"
// question must have at least a skeleton answer.
func TestFlightRecorderRetainsUntracedRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, FlightSampleEvery: -1})
	c := ts.Client()

	doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri1")))
	_, _, hdr := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri2")))
	traceID := hdr.Get("X-Trace-Id")

	status, list, _ := doJSON(t, c, http.MethodGet, ts.URL+"/debug/traces", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", status)
	}
	lines := strings.Split(strings.TrimSpace(string(list)), "\n")
	if len(lines) != 1 {
		t.Fatalf("retained %d entries, want just the rejection:\n%s", len(lines), list)
	}
	var sum flightSummary
	if err := json.Unmarshal([]byte(lines[0]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.TraceID != traceID || sum.Status != http.StatusConflict || sum.HasTrace || sum.Sampled {
		t.Fatalf("summary = %+v", sum)
	}
	// The detail endpoint serves the same entry, span-less.
	status, got, _ := doJSON(t, c, http.MethodGet, ts.URL+"/debug/traces/"+traceID, nil)
	if status != http.StatusOK {
		t.Fatalf("detail fetch = %d", status)
	}
	var entry FlightEntry
	if err := json.Unmarshal(got, &entry); err != nil {
		t.Fatal(err)
	}
	if len(entry.Trace) != 0 {
		t.Fatalf("untraced rejection grew a span tree: %s", entry.Trace)
	}
}

// TestFlightRecorderSampling: with FlightSampleEvery=1 every full-path admit
// retains a complete span tree even though no client asked for one.
func TestFlightRecorderSampling(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, FlightSampleEvery: 1})
	c := ts.Client()

	if st, _, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri1"))); st != http.StatusOK {
		t.Fatal("admit failed")
	}
	_, list, _ := doJSON(t, c, http.MethodGet, ts.URL+"/debug/traces", nil)
	lines := strings.Split(strings.TrimSpace(string(list)), "\n")
	if len(lines) != 1 {
		t.Fatalf("retained %d entries, want 1 sampled admit:\n%s", len(lines), list)
	}
	var sum flightSummary
	if err := json.Unmarshal([]byte(lines[0]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Sampled || !sum.HasTrace || sum.Status != http.StatusOK || sum.Op != "admit" {
		t.Fatalf("sampled admit summary = %+v", sum)
	}
	// The retained span tree is a real FEDCONS trace: root span "fedcons".
	_, got, _ := doJSON(t, c, http.MethodGet, ts.URL+"/debug/traces/"+sum.TraceID, nil)
	var entry FlightEntry
	if err := json.Unmarshal(got, &entry); err != nil {
		t.Fatal(err)
	}
	var spans []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(entry.Trace, &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || spans[0].Name != "fedcons" {
		t.Fatalf("sampled trace root = %+v", spans)
	}
}

// TestFlightRecorderDisabled: FlightRecorderSize < 0 turns the subsystem off;
// the endpoints answer but retain nothing.
func TestFlightRecorderDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, FlightRecorderSize: -1})
	c := ts.Client()
	doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri1")))
	_, _, hdr := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri2"))) // rejected
	status, list, _ := doJSON(t, c, http.MethodGet, ts.URL+"/debug/traces", nil)
	if status != http.StatusOK || strings.TrimSpace(string(list)) != "" {
		t.Fatalf("disabled recorder retained entries: %d %q", status, list)
	}
	status, _, _ = doJSON(t, c, http.MethodGet, ts.URL+"/debug/traces/"+hdr.Get("X-Trace-Id"), nil)
	if status != http.StatusNotFound {
		t.Fatalf("disabled recorder served a trace: %d", status)
	}
}

// TestFlightRingBounded: the ring holds exactly its capacity, evicting the
// oldest entries, and lookups of evicted IDs 404.
func TestFlightRingBounded(t *testing.T) {
	r := newFlightRing(4)
	for i := 0; i < 10; i++ {
		r.put(&FlightEntry{TraceID: fmt.Sprintf("t-%d", i)})
	}
	got := r.entries()
	if len(got) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("t-%d", 6+i); e.TraceID != want {
			t.Fatalf("entry %d = %s, want %s", i, e.TraceID, want)
		}
	}
	if r.find("t-0") != nil {
		t.Fatal("evicted entry still findable")
	}
	if r.find("t-9") == nil {
		t.Fatal("newest entry not findable")
	}
}

package service

import (
	"context"
	"math/rand"
	"net/http"
	"runtime"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/task"
)

// benchSystem draws the 50-task admission workload: tight constrained
// deadlines (β ≤ 0.3 puts D near len, so nearly every task is high-density)
// and DAGs large enough that Phase-1 MINPROCS list-scheduling scans dominate
// a cold analysis — the regime the memo cache exists for.
func benchSystem(b *testing.B) (task.System, int) {
	b.Helper()
	r := rand.New(rand.NewSource(42))
	p := gen.DefaultParams(50, 50)
	p.MinVerts, p.MaxVerts = 150, 250
	p.BetaMin, p.BetaMax = 0.1, 0.3
	sys, err := gen.System(r, p)
	if err != nil {
		b.Fatal(err)
	}
	for m := 8; m <= 4096; m *= 2 {
		if _, err := core.Schedule(sys, m, core.Options{}); err == nil {
			return sys, m
		}
	}
	b.Fatal("benchmark system unschedulable at every platform size")
	return nil, 0
}

// probe is the paper's Example 1 task, admitted and removed online.
func probe() *task.DAGTask {
	return task.MustNew("probe", dag.Example1(), dag.Example1D, dag.Example1T)
}

// BenchmarkAdmit quantifies the daemon's performance core — the
// content-addressed Phase-1 memo — on single-task admission against a
// 50-task system:
//
//   - cold-full-fedcons: what every admission would cost without the cache
//     (one complete two-phase FEDCONS run over all 51 tasks);
//   - warm-cache: one admit + one remove through the live server, all
//     Phase-1 analyses served from the cache, Phase 2 recomputed twice.
//
// The acceptance bar (results/timing_admission.json) is warm ≥ 5× faster
// than cold, even though the warm loop does two full Phase-2 partitions per
// iteration and the cold loop only one.
func BenchmarkAdmit(b *testing.B) {
	sys, m := benchSystem(b)
	full := append(sys.Clone(), probe())

	b.Run("cold-full-fedcons", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Schedule(full, m, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-cache", func(b *testing.B) {
		svc, err := New(Config{M: m, QueueBound: 4})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		ctx := context.Background()
		for i, tk := range sys {
			if status, body := svc.Admit(ctx, tk); status != http.StatusOK {
				b.Fatalf("seed admit %d: %d %s", i, status, body)
			}
		}
		// One warmup round caches the probe itself.
		if status, _ := svc.Admit(ctx, probe()); status != http.StatusOK {
			b.Fatal("probe warmup rejected")
		}
		if status, _ := svc.Remove(ctx, "probe"); status != http.StatusOK {
			b.Fatal("probe warmup removal failed")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if status, body := svc.Admit(ctx, probe()); status != http.StatusOK {
				b.Fatalf("warm admit: %d %s", status, body)
			}
			if status, _ := svc.Remove(ctx, "probe"); status != http.StatusOK {
				b.Fatal("warm remove failed")
			}
		}
	})
}

// BenchmarkAdmitBatch measures the analysis core of POST /v1/admit/batch — a
// full FEDCONS run through the AnalysisCache, exactly what doAdmitBatch
// executes inside the writer loop — in the three regimes that matter:
//
//   - cold-seq: empty cache, sequential Phase 1 (Par = 1);
//   - cold-par: empty cache, Phase-1 scans fanned out on the worker pool —
//     the batch endpoint's cold path;
//   - warm: every Phase-1 analysis served from the content-addressed memo.
//
// Verdicts are identical across all three (TestAdmitBatchParMatchesSequential);
// the deltas are recorded in results/timing_parallel_phase1.json.
func BenchmarkAdmitBatch(b *testing.B) {
	sys, m := benchSystem(b)

	cold := func(par int) func(*testing.B) {
		return func(b *testing.B) {
			opt := core.Options{Par: par}
			for i := 0; i < b.N; i++ {
				if _, err := NewAnalysisCache().Schedule(sys, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("cold-seq", cold(1))
	b.Run("cold-par", cold(runtime.GOMAXPROCS(0)))

	b.Run("warm", func(b *testing.B) {
		c := NewAnalysisCache()
		opt := core.Options{Par: runtime.GOMAXPROCS(0)}
		if _, err := c.Schedule(sys, m, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Schedule(sys, m, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

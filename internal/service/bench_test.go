package service

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/task"
)

// benchSystem draws the 50-task admission workload: tight constrained
// deadlines (β ≤ 0.3 puts D near len, so nearly every task is high-density)
// and DAGs large enough that Phase-1 MINPROCS list-scheduling scans dominate
// a cold analysis — the regime the memo cache exists for.
func benchSystem(b *testing.B) (task.System, int) {
	b.Helper()
	r := rand.New(rand.NewSource(42))
	p := gen.DefaultParams(50, 50)
	p.MinVerts, p.MaxVerts = 150, 250
	p.BetaMin, p.BetaMax = 0.1, 0.3
	sys, err := gen.System(r, p)
	if err != nil {
		b.Fatal(err)
	}
	for m := 8; m <= 4096; m *= 2 {
		if _, err := core.Schedule(sys, m, core.Options{}); err == nil {
			return sys, m
		}
	}
	b.Fatal("benchmark system unschedulable at every platform size")
	return nil, 0
}

// probe is the paper's Example 1 task, admitted and removed online.
func probe() *task.DAGTask {
	return task.MustNew("probe", dag.Example1(), dag.Example1D, dag.Example1T)
}

// seededServer starts a server with cfg, admits every task of sys, then runs
// one probe admit+remove warmup round so later iterations hit steady state.
func seededServer(b *testing.B, cfg Config, sys task.System) *Server {
	b.Helper()
	svc, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	ctx := context.Background()
	for i, tk := range sys {
		if status, body := svc.Admit(ctx, tk); status != http.StatusOK {
			b.Fatalf("seed admit %d: %d %s", i, status, body)
		}
	}
	if status, _ := svc.Admit(ctx, probe()); status != http.StatusOK {
		b.Fatal("probe warmup rejected")
	}
	if status, _ := svc.Remove(ctx, "probe"); status != http.StatusOK {
		b.Fatal("probe warmup removal failed")
	}
	return svc
}

// BenchmarkAdmit quantifies the daemon's single-task admission cost against a
// live 50-task system, across the three generations of the warm path:
//
//   - cold-full-fedcons: what every admission would cost with no state at all
//     (one complete two-phase FEDCONS run over all 51 tasks);
//   - warm-full-repartition: one admit + one remove through a server running
//     with Config.FullRepartition — Phase-1 analyses memoized, but every
//     mutation re-runs Phase 2 from scratch and the full core.Verify audit;
//   - warm-cache: the same pair through the default server — the low-density
//     probe is served from the incremental partition.State with the
//     delta-scoped audit, no batch re-analysis at all.
//
// The acceptance bar (results/timing_admission.json) is the incremental warm
// pair ≥ 10× faster than the full-repartition pair it replaced.
func BenchmarkAdmit(b *testing.B) {
	sys, m := benchSystem(b)
	full := append(sys.Clone(), probe())

	b.Run("cold-full-fedcons", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Schedule(full, m, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	pair := func(cfg Config) func(*testing.B) {
		return func(b *testing.B) {
			svc := seededServer(b, cfg, sys)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if status, body := svc.Admit(ctx, probe()); status != http.StatusOK {
					b.Fatalf("warm admit: %d %s", status, body)
				}
				if status, _ := svc.Remove(ctx, "probe"); status != http.StatusOK {
					b.Fatal("warm remove failed")
				}
			}
		}
	}
	b.Run("warm-full-repartition", pair(Config{M: m, QueueBound: 4, FullRepartition: true}))
	b.Run("warm-cache", pair(Config{M: m, QueueBound: 4}))
}

// BenchmarkRemove isolates the removal half of the warm pair: each iteration
// times exactly one Remove of a live low-density task. The removable
// population is replenished in chunks with the timer stopped, so re-admission
// cost never pollutes the removal number.
func BenchmarkRemove(b *testing.B) {
	sys, m := benchSystem(b)
	const chunk = 64
	names := make([]string, chunk)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	run := func(cfg Config) func(*testing.B) {
		return func(b *testing.B) {
			svc := seededServer(b, cfg, sys)
			ctx := context.Background()
			admitAll := func() {
				for _, n := range names {
					tk := task.MustNew(n, dag.Example1(), dag.Example1D, dag.Example1T)
					if status, body := svc.Admit(ctx, tk); status != http.StatusOK {
						b.Fatalf("refill admit %s: %d %s", n, status, body)
					}
				}
			}
			admitAll()
			removed := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if removed == chunk {
					b.StopTimer()
					admitAll()
					removed = 0
					b.StartTimer()
				}
				if status, _ := svc.Remove(ctx, names[removed]); status != http.StatusOK {
					b.Fatalf("remove %s failed", names[removed])
				}
				removed++
			}
		}
	}
	b.Run("warm-full-repartition", run(Config{M: m, QueueBound: 4, FullRepartition: true}))
	b.Run("warm-incremental", run(Config{M: m, QueueBound: 4}))
}

// BenchmarkAdmitBatch measures the analysis core of POST /v1/admit/batch — a
// full FEDCONS run through the AnalysisCache, exactly what doAdmitBatch
// executes inside the writer loop — in the three regimes that matter:
//
//   - cold-seq: empty cache, sequential Phase 1 (Par = 1);
//   - cold-par: empty cache, Phase-1 scans fanned out on the worker pool —
//     the batch endpoint's cold path;
//   - warm: every Phase-1 analysis served from the content-addressed memo.
//
// Verdicts are identical across all three (TestAdmitBatchParMatchesSequential);
// the deltas are recorded in results/timing_parallel_phase1.json.
func BenchmarkAdmitBatch(b *testing.B) {
	sys, m := benchSystem(b)

	cold := func(par int) func(*testing.B) {
		return func(b *testing.B) {
			opt := core.Options{Par: par}
			for i := 0; i < b.N; i++ {
				if _, err := NewAnalysisCache().Schedule(sys, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("cold-seq", cold(1))
	b.Run("cold-par", cold(runtime.GOMAXPROCS(0)))

	b.Run("warm", func(b *testing.B) {
		c := NewAnalysisCache()
		opt := core.Options{Par: runtime.GOMAXPROCS(0)}
		if _, err := c.Schedule(sys, m, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Schedule(sys, m, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSchedulePolicy compares the admission cost of the three -policy
// values on the same workload, cold and warm (recorded in
// results/timing_policy.json by scripts/policybench):
//
//   - cold/<policy>: one complete batch analysis with an empty memo. The
//     split policies pay their fractional-sizing pass plus the combined
//     servers+low partition, and — when the split attempt fails — the strict
//     fallback on top, so this bounds the policy layer's overhead over the
//     paper's algorithm.
//   - warm/<policy>: one admit+remove pair of a low-density probe through a
//     live server running the policy. Split shapes ride the same incremental
//     Phase-2 partition state as the strict shape, but over the combined
//     servers+low system — many more partitioned tasks on this workload —
//     and a delta the state cannot absorb declines to the full analysis, so
//     the warm column quantifies what the fractional shapes pay online.
func BenchmarkSchedulePolicy(b *testing.B) {
	sys, m := benchSystem(b)
	for _, pol := range []string{"", core.PolicySemi, core.PolicyReservation} {
		pol := pol
		b.Run("cold/"+policyLabel(pol), func(b *testing.B) {
			opt := core.Options{Policy: pol}
			for i := 0; i < b.N; i++ {
				if _, err := NewAnalysisCache().Schedule(sys, m, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("warm/"+policyLabel(pol), func(b *testing.B) {
			svc := seededServer(b, Config{M: m, QueueBound: 4, Options: core.Options{Policy: pol}}, sys)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if status, body := svc.Admit(ctx, probe()); status != http.StatusOK {
					b.Fatalf("warm admit: %d %s", status, body)
				}
				if status, _ := svc.Remove(ctx, "probe"); status != http.StatusOK {
					b.Fatal("warm remove failed")
				}
			}
		})
	}
}

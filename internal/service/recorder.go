package service

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
)

// DefaultFlightEntries is the per-shard flight-recorder capacity when
// Config.FlightRecorderSize is 0.
const DefaultFlightEntries = 256

// DefaultFlightSampleEvery is the default admit-sampling period: one in this
// many untraced full-path admissions records its complete decision trace.
const DefaultFlightSampleEvery = 64

// FlightEntry is one retained admission decision: who asked, what was
// decided, and — when the decision was client-traced or sampled — the full
// FEDCONS span tree, byte-identical to the ?trace=1 inline verdict's "trace"
// field (both render from the same obs export call).
type FlightEntry struct {
	Seq       uint64          `json:"seq"`
	TraceID   string          `json:"trace_id"`
	Shard     int             `json:"shard"`
	Cluster   string          `json:"cluster,omitempty"`
	Op        string          `json:"op"`
	Task      string          `json:"task"`
	Status    int             `json:"status"`
	Sampled   bool            `json:"sampled"` // true when the shard speculatively traced this op
	UnixNs    int64           `json:"unix_ns"`
	LatencyNs int64           `json:"latency_ns"`
	Trace     json.RawMessage `json:"trace,omitempty"`
}

// flightRing is the shard's bounded flight recorder: a lock-free ring of the
// last N decision entries. There is exactly one writer — the shard's writer
// loop — so put needs no CAS; readers (the /debug/traces handlers) load the
// slots atomically and may observe a torn *window* (entries admitted while
// they scan) but never a torn entry.
type flightRing struct {
	slots []atomic.Pointer[FlightEntry]
	seq   atomic.Uint64
}

func newFlightRing(n int) *flightRing {
	return &flightRing{slots: make([]atomic.Pointer[FlightEntry], n)}
}

// put retains e, evicting the oldest entry once the ring is full. Writer-loop
// only. e must not be mutated afterwards.
func (r *flightRing) put(e *FlightEntry) {
	if r == nil {
		return
	}
	e.Seq = r.seq.Add(1)
	r.slots[(e.Seq-1)%uint64(len(r.slots))].Store(e)
}

// entries returns the retained entries in admission order (ascending Seq).
// Safe for concurrent use with put.
func (r *flightRing) entries() []*FlightEntry {
	if r == nil {
		return nil
	}
	out := make([]*FlightEntry, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// find returns the retained entry with the given trace ID, or nil.
func (r *flightRing) find(id string) *FlightEntry {
	if r == nil {
		return nil
	}
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil && e.TraceID == id {
			return e
		}
	}
	return nil
}

// flightSummary is the list view of an entry: everything but the (possibly
// large) span tree, plus a flag saying whether one is retained.
type flightSummary struct {
	Seq       uint64 `json:"seq"`
	TraceID   string `json:"trace_id"`
	Shard     int    `json:"shard"`
	Cluster   string `json:"cluster,omitempty"`
	Op        string `json:"op"`
	Task      string `json:"task"`
	Status    int    `json:"status"`
	Sampled   bool   `json:"sampled"`
	UnixNs    int64  `json:"unix_ns"`
	LatencyNs int64  `json:"latency_ns"`
	HasTrace  bool   `json:"has_trace"`
}

// handleTraces serves GET /debug/traces: one JSON line per retained entry
// across every shard, oldest first within a shard, shards in index order.
// Deterministic given a quiescent recorder — the JSONL export format the
// obssmoke harness diffs.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	enc := json.NewEncoder(w)
	for _, sh := range s.shards {
		for _, e := range sh.flight.entries() {
			enc.Encode(flightSummary{
				Seq: e.Seq, TraceID: e.TraceID, Shard: e.Shard, Cluster: e.Cluster,
				Op: e.Op, Task: e.Task, Status: e.Status, Sampled: e.Sampled,
				UnixNs: e.UnixNs, LatencyNs: e.LatencyNs, HasTrace: len(e.Trace) > 0,
			})
		}
	}
}

// handleTraceByID serves GET /debug/traces/{id}: the full retained entry,
// span tree included.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, sh := range s.shards {
		if e := sh.flight.find(id); e != nil {
			// MarshalIndent, deliberately: the Verdict encoder renders its
			// body (trace field included) in two-space-indent form, and both
			// paths embed the trace at the same nesting depth — so the
			// retained "trace" field here re-indents to the exact bytes the
			// ?trace=1 inline verdict carried. That byte-identity is pinned
			// by TestFlightRecorderRejectionByteIdentity and obssmoke.
			body, err := json.MarshalIndent(e, "", "  ")
			if err != nil {
				writeJSON(w, errResult(http.StatusInternalServerError, "encoding trace: "+err.Error()))
				return
			}
			writeJSON(w, opResult{status: http.StatusOK, body: append(body, '\n')})
			return
		}
	}
	writeJSON(w, errResult(http.StatusNotFound, "no retained trace with id "+id+" (evicted or never recorded)"))
}

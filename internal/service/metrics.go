package service

import (
	"expvar"
	"sort"
	"sync"
	"time"
)

// latencyWindow retains the most recent admission latencies for on-demand
// quantile estimation. A fixed ring keeps the memory bound; 1024 samples is
// plenty for p50/p99 of a live service.
const latencyWindow = 1024

type latencyRing struct {
	mu    sync.Mutex
	buf   [latencyWindow]time.Duration
	n     int // total observations ever
	count int // valid entries in buf
}

func (l *latencyRing) observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.n%latencyWindow] = d
	l.n++
	if l.count < latencyWindow {
		l.count++
	}
}

// quantiles returns the p50 and p99 of the retained window, in nanoseconds.
func (l *latencyRing) quantiles() (p50, p99 int64) {
	l.mu.Lock()
	samples := make([]time.Duration, l.count)
	copy(samples, l.buf[:l.count])
	l.mu.Unlock()
	if len(samples) == 0 {
		return 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := func(p float64) int {
		i := int(p * float64(len(samples)-1))
		return i
	}
	return int64(samples[idx(0.50)]), int64(samples[idx(0.99)])
}

// metrics holds the daemon's counters. Each Server owns its own expvar.Map
// rather than publishing into the process-global expvar namespace, so tests
// (and a -loadgen process driving itself) can hold many servers without
// Publish collisions; /debug/vars renders the map.
type metrics struct {
	admits   expvar.Int // admissions accepted and installed
	rejects  expvar.Int // admissions rejected by the FEDCONS analysis
	removes  expvar.Int // tasks removed
	shed     expvar.Int // requests dropped by queue-bound load shedding
	timeouts expvar.Int // requests whose deadline expired before analysis
	errors   expvar.Int // malformed requests (decode/validation failures)
	latency  latencyRing
}

// vars assembles the /debug/vars map for a server.
func (s *Server) vars() *expvar.Map {
	m := new(expvar.Map).Init()
	m.Set("admits_total", &s.met.admits)
	m.Set("rejects_total", &s.met.rejects)
	m.Set("removes_total", &s.met.removes)
	m.Set("shed_total", &s.met.shed)
	m.Set("timeouts_total", &s.met.timeouts)
	m.Set("errors_total", &s.met.errors)
	m.Set("queue_depth", expvar.Func(func() any { return len(s.reqs) }))
	m.Set("queue_bound", expvar.Func(func() any { return cap(s.reqs) }))
	m.Set("tasks", expvar.Func(func() any {
		sys, _ := s.Snapshot()
		return len(sys)
	}))
	m.Set("cache_entries", expvar.Func(func() any { return s.cache.Len() }))
	m.Set("cache_hits", expvar.Func(func() any { h, _ := s.cache.Stats(); return h }))
	m.Set("cache_misses", expvar.Func(func() any { _, mi := s.cache.Stats(); return mi }))
	m.Set("cache_hit_rate", expvar.Func(func() any {
		h, mi := s.cache.Stats()
		if h+mi == 0 {
			return 0.0
		}
		return float64(h) / float64(h+mi)
	}))
	m.Set("admit_latency_p50_ns", expvar.Func(func() any { p50, _ := s.met.latency.quantiles(); return p50 }))
	m.Set("admit_latency_p99_ns", expvar.Func(func() any { _, p99 := s.met.latency.quantiles(); return p99 }))
	return m
}

package service

import (
	"expvar"

	"fedsched/internal/obs"
)

// metrics holds one shard's counters. Each Shard owns its own expvar.Map
// rather than publishing into the process-global expvar namespace, so tests
// (and a -loadgen process driving itself) can hold many servers without
// Publish collisions; /debug/vars renders the map(s).
//
// Admission latency is an obs.Histogram — the same log-bucketed implementation
// the rest of the pipeline uses — which replaced an earlier bespoke sample
// ring whose quantile estimator used floor(p·(n−1)) indexing and so
// under-reported tail quantiles on small windows (obs.Histogram.Quantile is
// ceil nearest-rank).
type metrics struct {
	admits     expvar.Int // tasks accepted and installed (batch members count singly)
	batches    expvar.Int // batch admissions accepted atomically
	rejects    expvar.Int // admissions rejected by the FEDCONS analysis
	removes    expvar.Int // tasks removed
	shed       expvar.Int // requests dropped by queue-bound load shedding
	timeouts   expvar.Int // requests whose deadline expired before analysis
	errors     expvar.Int // malformed requests (decode/validation failures)
	walAppends expvar.Int // mutation records fsynced to the write-ahead log
	snapshots  expvar.Int // snapshots written (each truncates the WAL)
	latency    obs.Histogram
}

// vars assembles the /debug/vars map for a shard. The WAL keys appear only
// on durable shards, so a non-durable single-shard server exposes exactly
// the pre-shard key set.
func (s *Shard) vars() *expvar.Map {
	m := new(expvar.Map).Init()
	m.Set("admits_total", &s.met.admits)
	m.Set("batch_admits_total", &s.met.batches)
	m.Set("rejects_total", &s.met.rejects)
	m.Set("removes_total", &s.met.removes)
	m.Set("shed_total", &s.met.shed)
	m.Set("timeouts_total", &s.met.timeouts)
	m.Set("errors_total", &s.met.errors)
	m.Set("queue_depth", expvar.Func(func() any { return len(s.reqs) }))
	m.Set("queue_bound", expvar.Func(func() any { return cap(s.reqs) }))
	m.Set("tasks", expvar.Func(func() any {
		sys, _ := s.Snapshot()
		return len(sys)
	}))
	m.Set("cache_entries", expvar.Func(func() any { return s.cache.Len() }))
	m.Set("cache_hits", expvar.Func(func() any { h, _ := s.cache.Stats(); return h }))
	m.Set("cache_misses", expvar.Func(func() any { _, mi := s.cache.Stats(); return mi }))
	m.Set("cache_hit_rate", expvar.Func(func() any {
		h, mi := s.cache.Stats()
		if h+mi == 0 {
			return 0.0
		}
		return float64(h) / float64(h+mi)
	}))
	if s.store != nil {
		m.Set("wal_appends_total", &s.met.walAppends)
		m.Set("wal_snapshots_total", &s.met.snapshots)
		m.Set("wal_seq", expvar.Func(func() any { return int64(s.store.Seq()) }))
	}
	m.Set("admit_latency_p50_ns", expvar.Func(func() any { return s.met.latency.Quantile(0.50) }))
	m.Set("admit_latency_p99_ns", expvar.Func(func() any { return s.met.latency.Quantile(0.99) }))
	m.Set("admit_latency_p999_ns", expvar.Func(func() any { return s.met.latency.Quantile(0.999) }))
	return m
}

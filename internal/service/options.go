package service

import (
	"fmt"
	"strconv"
	"strings"

	"fedsched/internal/core"
	"fedsched/internal/listsched"
	"fedsched/internal/partition"
)

// ParseOptions maps the flag vocabulary shared by cmd/fedsched and
// cmd/fedschedd onto core.Options, so the batch CLI and the daemon cannot
// drift apart in what variants they accept.
func ParseOptions(minprocs, prio, heuristic, admission string) (core.Options, error) {
	var opt core.Options
	switch minprocs {
	case "ls-scan":
		opt.Minprocs = core.LSScan
	case "analytic":
		opt.Minprocs = core.Analytic
	default:
		return opt, fmt.Errorf("unknown -minprocs %q", minprocs)
	}
	switch prio {
	case "insertion":
		opt.Priority = nil
	case "longest-path":
		opt.Priority = listsched.LongestPathFirst
	case "largest-wcet":
		opt.Priority = listsched.LargestWCETFirst
	default:
		return opt, fmt.Errorf("unknown -priority %q", prio)
	}
	switch heuristic {
	case "first-fit":
		opt.Partition.Heuristic = partition.FirstFit
	case "best-fit":
		opt.Partition.Heuristic = partition.BestFit
	case "worst-fit":
		opt.Partition.Heuristic = partition.WorstFit
	default:
		return opt, fmt.Errorf("unknown -partition %q", heuristic)
	}
	switch admission {
	case "dbf-approx":
		opt.Partition.Test = partition.ApproxDBF
	case "edf-exact":
		opt.Partition.Test = partition.ExactEDF
	case "dm-rta":
		opt.Partition.Test = partition.DMRta
	default:
		return opt, fmt.Errorf("unknown -admission %q", admission)
	}
	return opt, nil
}

// ParsePolicy maps the -policy flag vocabulary shared by the cmds onto the
// normalized core.Options.Policy value: "" for the strict default, the policy
// name otherwise. The vocabulary is static — the registry's contents never
// widen what the flags accept — so an unknown value fails identically whether
// or not a policy package was linked in.
func ParsePolicy(name string) (string, error) {
	switch name {
	case "", "fedcons":
		return "", nil
	case core.PolicySemi, core.PolicyReservation, core.PolicyTyped:
		return name, nil
	default:
		return "", fmt.Errorf("unknown -policy %q (want fedcons, semi, reservation or typed)", name)
	}
}

// ParseMTypes maps the -m-types flag vocabulary ("a:4,b:2") onto the
// per-type processor-budget vector of core.Options.MTypes: letters name type
// indices (a = 0, b = 1, …), each may appear at most once, and unnamed types
// below the largest named one default to 0 processors. The budgets' sum is
// validated against the platform size by the caller (the cmds know m).
func ParseMTypes(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	budgets := make(map[int]int)
	maxIdx := -1
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("-m-types entry %q: want <type>:<count>", part)
		}
		if len(name) != 1 || name[0] < 'a' || name[0] > 'z' {
			return nil, fmt.Errorf("-m-types entry %q: type must be a letter a-z", part)
		}
		idx := int(name[0] - 'a')
		if _, dup := budgets[idx]; dup {
			return nil, fmt.Errorf("-m-types names type %q twice", name)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-m-types entry %q: count must be a non-negative integer", part)
		}
		budgets[idx] = n
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	out := make([]int, maxIdx+1)
	for idx, n := range budgets {
		out[idx] = n
	}
	return out, nil
}

// policyLabel renders a normalized policy value for operator-facing messages:
// the empty strict default reads back as "fedcons".
func policyLabel(p string) string {
	if p == "" {
		return core.PolicyFedcons
	}
	return p
}

package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fedsched/internal/core"
	"fedsched/internal/obs"
	"fedsched/internal/partition"
	"fedsched/internal/store"
	"fedsched/internal/task"
)

// Shard is one independent admission domain: a live task system, its current
// FEDCONS allocation, the content-addressed Phase-1 memo cache, and (when
// durability is configured) the WAL+snapshot store that lets it restart into
// its exact pre-crash state. A Server holds N shards, shared-nothing: they
// serialize their own mutations, own their own queues, caches, metrics and
// WAL directories, and never touch each other's state.
//
// Consistency model (unchanged from the pre-shard single server): all
// mutations (admit, remove) serialize through a single-writer loop, so trial
// analyses always run against a quiescent state; reads take an RWMutex
// read-lock on the installed snapshot and never block behind an analysis in
// progress. Every state the shard installs — and therefore every state a
// reader can observe — has passed core.Verify.
//
// Durability model: when a store is attached, the mutation record is
// appended and fsynced to the WAL *before* the new state is installed or
// acknowledged, so every verdict a client ever received is recoverable. An
// atomic batch is one WAL record, so replay can never half-apply it.
type Shard struct {
	id    int
	cfg   Config
	cache *AnalysisCache
	store *store.Store // nil without Config.WALDir

	mu    sync.RWMutex // guards sys and alloc (the installed snapshot)
	sys   task.System
	alloc *core.Allocation // nil iff sys is empty

	// sysHashes holds the content hash (core.TaskHash hex) of each installed
	// task, index aligned with sys. Writer-loop-only (and recovery, which
	// runs before the loop starts): maintained so WAL records and snapshots
	// never re-hash the installed system.
	sysHashes []string

	// pstate is the live incremental Phase-2 partition mirroring alloc's
	// low-density placement; nil when alloc is nil (or after a rebuild
	// failure, which just disables the warm path). Writer-loop-only, like
	// sysHashes: mutated by the warm path and re-derived from the installed
	// allocation after every full-analysis install (see syncPartitionState).
	pstate *partition.State

	reqs    chan *request
	closing chan struct{}
	closed  atomic.Bool
	loop    sync.WaitGroup
	once    sync.Once

	met      metrics
	varsMap  http.Handler
	promVars *expvar.Map
	started  time.Time

	// tracePrefix + traceSeq mint per-request trace IDs like "a1b2c3d4-000007".
	tracePrefix string
	traceSeq    obs.Counter

	// flight retains the last N decision entries (nil when the recorder is
	// disabled); flightTick drives the 1-in-FlightSampleEvery speculative
	// tracing of untraced full-path admissions.
	flight     *flightRing
	flightTick obs.Counter

	// slo is the server-wide SLO ledger (shared across shards, nil-safe);
	// set by service.New before the shard serves its first request.
	slo *sloState
}

// mutMeta is the per-mutation metadata threaded from the HTTP handler through
// the writer loop into the WAL record and the flight recorder.
type mutMeta struct {
	trace   string
	cluster string
}

// request is one queued mutation for the writer loop.
type request struct {
	ctx   context.Context
	trace string // trace ID, echoed in queue-expiry error bodies
	run   func() opResult
	resp  chan opResult // buffered: the loop never blocks on a gone client
}

// opResult is a finished operation: an HTTP status and a JSON body. flight,
// when non-nil, is a decision entry the writer loop stamps with the
// operation's latency and retains in the shard's flight recorder.
type opResult struct {
	status int
	body   []byte
	flight *FlightEntry
}

// newShard builds shard id, recovers its durable state when cfg.WALDir is
// set, and starts its writer loop.
func newShard(id int, cfg Config) (*Shard, error) {
	s := &Shard{
		id:          id,
		cfg:         cfg,
		cache:       NewAnalysisCache(),
		reqs:        make(chan *request, cfg.QueueBound),
		closing:     make(chan struct{}),
		started:     time.Now(),
		tracePrefix: randomTracePrefix(),
	}
	if cfg.FlightRecorderSize >= 0 {
		n := cfg.FlightRecorderSize
		if n == 0 {
			n = DefaultFlightEntries
		}
		s.flight = newFlightRing(n)
	}
	if cfg.WALDir != "" {
		st, rec, err := store.Open(filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%d", id)), cfg.SnapshotEvery)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
		s.store = st
		if err := s.recover(rec); err != nil {
			st.Close()
			return nil, fmt.Errorf("shard %d: %w", id, err)
		}
	}
	s.promVars = s.vars()
	s.varsMap = varsHandler(s.promVars)
	s.loop.Add(1)
	go s.writerLoop()
	return s, nil
}

// recover rebuilds the shard's live state from a store Recovery: the logged
// content hashes are re-derived from the recovered tasks (end-to-end
// integrity check on snapshot+WAL), the full FEDCONS analysis is re-run —
// prewarming the Phase-1 memo cache on the configured worker pool — and the
// resulting allocation is re-audited by core.Verify before it is installed.
// Runs before the writer loop starts, so the fields need no locking.
func (s *Shard) recover(rec *store.Recovery) error {
	if len(rec.Tasks) == 0 {
		return nil
	}
	if rec.M != 0 && rec.M != s.cfg.M {
		return fmt.Errorf("wal-dir holds a system admitted against m=%d, daemon configured with m=%d; refusing to reinterpret it", rec.M, s.cfg.M)
	}
	// The policy is recorded alongside M in the snapshot, so the check shares
	// its gate: a WAL-only recovery (no snapshot yet, rec.M == 0) carries no
	// policy record to compare against.
	if rec.M != 0 && rec.Policy != s.cfg.Options.Policy {
		return fmt.Errorf("wal-dir holds a system admitted under -policy=%s, daemon configured with -policy=%s; refusing to reinterpret it",
			policyLabel(rec.Policy), policyLabel(s.cfg.Options.Policy))
	}
	for i, tk := range rec.Tasks {
		if h := s.cache.hashOf(tk).String(); h != rec.Hashes[i] {
			return fmt.Errorf("recovered task %q hashes to %s but the log recorded %s: store corrupted", tk.Name, h[:12], rec.Hashes[i])
		}
	}
	alloc, err := s.cache.Schedule(rec.Tasks, s.cfg.M, s.cfg.Options)
	if err != nil {
		return fmt.Errorf("recovered system failed re-analysis: %w", err)
	}
	if err := core.Verify(rec.Tasks, s.cfg.M, alloc); err != nil {
		return fmt.Errorf("recovered allocation failed verification: %w", err)
	}
	s.sys, s.alloc, s.sysHashes = rec.Tasks, alloc, rec.Hashes
	// Rebuild the incremental Phase-2 state from the recovered allocation, so
	// the first warm admission after a crash takes the same fast path — and
	// produces the same bytes — as on a daemon that never crashed.
	s.syncPartitionState()
	return nil
}

// Close stops the writer loop after draining every queued request, so no
// client is left waiting on an unanswered channel, then closes the WAL. It
// is idempotent. Deliberately no parting snapshot: a clean close must stay
// indistinguishable from a crash so the recovery path is the only path.
func (s *Shard) Close() {
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.closing)
	})
	s.loop.Wait()
	if s.store != nil {
		s.store.Close()
	}
}

// ID returns the shard's index within its server.
func (s *Shard) ID() int { return s.id }

// Cache exposes the analysis cache (read-only use: stats).
func (s *Shard) Cache() *AnalysisCache { return s.cache }

// Snapshot returns the installed system and allocation. The system slice is
// a copy; the allocation is shared and must be treated as immutable.
func (s *Shard) Snapshot() (task.System, *core.Allocation) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys.Clone(), s.alloc
}

func (s *Shard) writerLoop() {
	defer s.loop.Done()
	for {
		select {
		case req := <-s.reqs:
			s.serve(req)
		case <-s.closing:
			for {
				select {
				case req := <-s.reqs:
					s.serve(req)
				default:
					return
				}
			}
		}
	}
}

func (s *Shard) serve(req *request) {
	if err := req.ctx.Err(); err != nil {
		s.met.timeouts.Add(1)
		req.resp <- errResultTrace(http.StatusGatewayTimeout, "admission deadline expired while queued: "+err.Error(), req.trace)
		return
	}
	req.resp <- req.run()
}

// submit routes a mutation through the writer loop, shedding load when the
// queue is full and honoring the caller's context deadline. The trace ID is
// echoed in every error body minted here (429/503/504), so a client that
// never got a verdict still holds a handle the operator can grep for. Every
// outcome — including sheds and timeouts that never reached the loop — feeds
// the SLO ledger with the client-visible latency (queue wait included).
func (s *Shard) submit(ctx context.Context, op, traceID string, run func() opResult) opResult {
	start := time.Now()
	res := s.submitInner(ctx, traceID, run)
	s.slo.observe(op, res.status, time.Since(start))
	return res
}

func (s *Shard) submitInner(ctx context.Context, traceID string, run func() opResult) opResult {
	if s.closed.Load() {
		return errResultTrace(http.StatusServiceUnavailable, "server shutting down", traceID)
	}
	req := &request{ctx: ctx, trace: traceID, run: run, resp: make(chan opResult, 1)}
	select {
	case s.reqs <- req:
	default:
		s.met.shed.Add(1)
		return errResultTrace(http.StatusTooManyRequests, "admission queue full; retry later", traceID)
	}
	select {
	case res := <-req.resp:
		return res
	case <-ctx.Done():
		// The loop may still execute the request (it re-checks the context
		// before starting, but cannot un-run an analysis already underway);
		// the client should GET /v1/allocation to learn the outcome.
		s.met.timeouts.Add(1)
		return errResultTrace(http.StatusGatewayTimeout, "admission deadline expired: "+ctx.Err().Error(), traceID)
	}
}

// randomTracePrefix draws the per-shard trace-ID prefix.
func randomTracePrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace"
	}
	return hex.EncodeToString(b[:])
}

// nextTraceID mints a shard-unique request trace ID.
func (s *Shard) nextTraceID() string {
	return fmt.Sprintf("%s-%06d", s.tracePrefix, s.traceSeq.Inc())
}

// Admit trial-admits tk: it runs the full two-phase FEDCONS test on the
// current system plus tk, audits the resulting allocation with core.Verify,
// and installs it only if both succeed. The returned status is the HTTP
// status the daemon would serve: 200 installed, 409 rejected by the
// analysis (body = Verdict with the failure reason) or duplicate name,
// 429 shed, 504 deadline expired, 500 audit failure (state unchanged).
func (s *Shard) Admit(ctx context.Context, tk *task.DAGTask) (int, []byte) {
	return s.AdmitTrace(ctx, tk, s.nextTraceID(), nil)
}

// AdmitTrace is Admit with an explicit trace ID (echoed in shed/timeout error
// bodies and the Observer record) and an optional obs.Recorder: when rec is
// non-nil the full FEDCONS decision trace of the trial analysis is recorded
// into it and embedded in the Verdict's "trace" field — the daemon's
// ?trace=1 admit mode.
func (s *Shard) AdmitTrace(ctx context.Context, tk *task.DAGTask, traceID string, rec *obs.Recorder) (int, []byte) {
	return s.admitOp(ctx, tk, traceID, rec, "")
}

// admitOp is AdmitTrace with the request's cluster name, threaded into the
// WAL record and the flight recorder.
func (s *Shard) admitOp(ctx context.Context, tk *task.DAGTask, traceID string, rec *obs.Recorder, cluster string) (int, []byte) {
	meta := mutMeta{trace: traceID, cluster: cluster}
	res := s.submit(ctx, "admit", traceID, func() opResult {
		return s.observed(traceID, "admit", tk.Name, func() opResult { return s.doAdmit(tk, rec, meta) })
	})
	return res.status, res.body
}

// Remove removes the named task, re-analyzes and installs the shrunken
// system. Status: 200 removed, 404 unknown name, plus the same 429/504
// envelope as Admit.
func (s *Shard) Remove(ctx context.Context, name string) (int, []byte) {
	return s.RemoveTrace(ctx, name, s.nextTraceID())
}

// RemoveTrace is Remove with an explicit trace ID.
func (s *Shard) RemoveTrace(ctx context.Context, name, traceID string) (int, []byte) {
	return s.removeOp(ctx, name, traceID, "")
}

// removeOp is RemoveTrace with the request's cluster name.
func (s *Shard) removeOp(ctx context.Context, name, traceID, cluster string) (int, []byte) {
	meta := mutMeta{trace: traceID, cluster: cluster}
	res := s.submit(ctx, "remove", traceID, func() opResult {
		return s.observed(traceID, "remove", name, func() opResult { return s.doRemove(name, meta) })
	})
	return res.status, res.body
}

// observed runs one mutation inside the writer loop, timing it into the
// latency histogram and reporting the completed operation to Config.Observer.
func (s *Shard) observed(traceID, op, taskName string, run func() opResult) opResult {
	start := time.Now()
	var h0, m0 int64
	if s.cfg.Observer != nil {
		h0, m0 = s.cache.Stats()
	}
	res := run()
	lat := time.Since(start)
	if op == "admit" || op == "admit-batch" {
		s.met.latency.Observe(lat)
	}
	if res.flight != nil {
		// Stamp and retain the decision entry here, where the latency is
		// known; we are the writer loop, the ring's single writer.
		res.flight.UnixNs = start.UnixNano()
		res.flight.LatencyNs = lat.Nanoseconds()
		s.flight.put(res.flight)
		res.flight = nil
	}
	if s.cfg.Observer != nil {
		h1, m1 := s.cache.Stats()
		s.cfg.Observer(AdmissionRecord{
			TraceID:     traceID,
			Shard:       s.id,
			Op:          op,
			Task:        taskName,
			Status:      res.status,
			Schedulable: res.status == http.StatusOK,
			LatencyNs:   lat.Nanoseconds(),
			CacheHits:   h1 - h0,
			CacheMisses: m1 - m0,
			Tasks:       len(s.sys), // safe: we are the writer loop
		})
	}
	return res
}

// persistAdmit makes an accepted admission durable before it is installed.
// A durability failure refuses the admission (500, state unchanged): the
// shard never acknowledges state it could lose.
func (s *Shard) persistAdmit(tks []*task.DAGTask, hashes []string, meta mutMeta) *opResult {
	if s.store == nil {
		return nil
	}
	if err := s.store.LogAdmit(tks, hashes, meta.trace, meta.cluster); err != nil {
		s.met.errors.Add(1)
		res := errResult(http.StatusInternalServerError, "write-ahead log append failed: "+err.Error())
		return &res
	}
	s.met.walAppends.Add(1)
	return nil
}

// persistRemove is persistAdmit's removal twin.
func (s *Shard) persistRemove(name string, meta mutMeta) *opResult {
	if s.store == nil {
		return nil
	}
	if err := s.store.LogRemove(name, meta.trace, meta.cluster); err != nil {
		s.met.errors.Add(1)
		res := errResult(http.StatusInternalServerError, "write-ahead log append failed: "+err.Error())
		return &res
	}
	s.met.walAppends.Add(1)
	return nil
}

// maybeSnapshot checkpoints after an installed mutation. The mutation is
// already durable in the WAL, so a snapshot failure only delays truncation;
// it is counted, not surfaced to the client.
func (s *Shard) maybeSnapshot() {
	if s.store == nil {
		return
	}
	wrote, err := s.store.MaybeSnapshot(s.sys, s.sysHashes, s.cfg.M, s.cfg.Options.Policy)
	if err != nil {
		s.met.errors.Add(1)
		return
	}
	if wrote {
		s.met.snapshots.Add(1)
	}
}

// speculate decides whether an untraced full-path mutation should record its
// decision trace anyway: one in Config.FlightSampleEvery does, so the flight
// recorder retains representative full traces without paying the recorder's
// cost (≈4× on the analysis; see results/timing_obs.json) on every request.
// A client-supplied recorder always wins and is never double-counted as a
// sample. Writer-loop only.
func (s *Shard) speculate(rec *obs.Recorder) (*obs.Recorder, bool) {
	if rec != nil {
		return rec, false
	}
	if s.flight == nil || s.cfg.FlightSampleEvery <= 0 {
		return nil, false
	}
	if s.flightTick.Inc()%int64(s.cfg.FlightSampleEvery) != 0 {
		return nil, false
	}
	return obs.New(obs.DefaultLimits), true
}

// traceBytes renders a recorder's span tree exactly the way the ?trace=1
// verdict embeds it. Both the inline verdict and the flight entry are set
// from ONE call's return value, which is what makes the /debug/traces/{id}
// copy byte-identical to the inline trace.
func traceBytes(rec *obs.Recorder) []byte {
	if rec == nil {
		return nil
	}
	return rec.JSON(obs.ExportOptions{Timings: true})
}

// noteFlight attaches a decision entry to res for the writer loop to stamp
// and retain. No-op when the recorder is disabled.
func (s *Shard) noteFlight(res opResult, meta mutMeta, op, taskName string, sampled bool, trace []byte) opResult {
	if s.flight == nil {
		return res
	}
	res.flight = &FlightEntry{
		TraceID: meta.trace, Shard: s.id, Cluster: meta.cluster,
		Op: op, Task: taskName, Status: res.status, Sampled: sampled, Trace: trace,
	}
	return res
}

// doAdmit runs inside the writer loop: it is the only writer, so reading
// s.sys without the lock is safe, and the lock is taken only to install.
func (s *Shard) doAdmit(tk *task.DAGTask, rec *obs.Recorder, meta mutMeta) opResult {
	for _, cur := range s.sys {
		if cur.Name == tk.Name {
			s.met.errors.Add(1)
			res := errResult(http.StatusConflict, fmt.Sprintf("task %q already admitted; remove it first", tk.Name))
			return s.noteFlight(res, meta, "admit", tk.Name, false, traceBytes(rec))
		}
	}
	if res, ok := s.fastAdmit(tk, rec, meta); ok {
		return res
	}
	srec, sampled := s.speculate(rec)
	trial := append(s.sys.Clone(), tk)
	opt := s.cfg.Options
	opt.Trace = srec
	alloc, err := s.cache.Schedule(trial, s.cfg.M, opt)
	if err != nil {
		s.met.rejects.Add(1)
		v := NewVerdict(trial, s.cfg.M, nil, err)
		trace := traceBytes(srec)
		if rec != nil {
			v.Trace = trace
		}
		// Every rejection is retained — explaining "why not" after the fact
		// is the recorder's reason to exist.
		return s.noteFlight(verdictResult(http.StatusConflict, v), meta, "admit", tk.Name, sampled, trace)
	}
	if err := core.Verify(trial, s.cfg.M, alloc); err != nil {
		// The audit is the last line of defense: never install an
		// allocation the independent checker rejects.
		res := errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error())
		return s.noteFlight(res, meta, "admit", tk.Name, sampled, traceBytes(srec))
	}
	hash := s.cache.hashOf(tk).String()
	if res := s.persistAdmit([]*task.DAGTask{tk}, []string{hash}, meta); res != nil {
		return *res
	}
	s.install(trial, alloc, append(append([]string(nil), s.sysHashes...), hash))
	s.syncPartitionState()
	s.met.admits.Add(1)
	s.maybeSnapshot()
	v := NewVerdict(trial, s.cfg.M, alloc, nil)
	trace := traceBytes(srec)
	if rec != nil {
		v.Trace = trace
	}
	res := verdictResult(http.StatusOK, v)
	if sampled || rec != nil {
		// Admits are retained only when traced (client-requested or sampled);
		// retaining every warm admit would evict the interesting entries.
		res = s.noteFlight(res, meta, "admit", tk.Name, sampled, trace)
	}
	return res
}

func (s *Shard) doRemove(name string, meta mutMeta) opResult {
	idx := -1
	for i, cur := range s.sys {
		if cur.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.met.errors.Add(1)
		return errResult(http.StatusNotFound, fmt.Sprintf("no task named %q", name))
	}
	trial := make(task.System, 0, len(s.sys)-1)
	trial = append(trial, s.sys[:idx]...)
	trial = append(trial, s.sys[idx+1:]...)
	hashes := make([]string, 0, len(s.sysHashes))
	hashes = append(hashes, s.sysHashes[:idx]...)
	if idx < len(s.sysHashes) {
		hashes = append(hashes, s.sysHashes[idx+1:]...)
	}
	if len(trial) == 0 {
		if res := s.persistRemove(name, meta); res != nil {
			return *res
		}
		s.install(nil, nil, nil)
		s.syncPartitionState()
		s.met.removes.Add(1)
		s.maybeSnapshot()
		return verdictResult(http.StatusOK, NewVerdict(nil, s.cfg.M, nil, nil))
	}
	if res, ok := s.fastRemove(name, idx, trial, hashes, meta); ok {
		return res
	}
	alloc, err := s.cache.Schedule(trial, s.cfg.M, s.cfg.Options)
	if err != nil {
		// Removing a task can, in principle, perturb the deadline-ordered
		// first-fit packing enough to fail; keep the (verified) old state
		// rather than install nothing.
		s.met.errors.Add(1)
		res := errResult(http.StatusConflict, fmt.Sprintf("system unschedulable after removing %q: %v", name, err))
		return s.noteFlight(res, meta, "remove", name, false, nil)
	}
	if err := core.Verify(trial, s.cfg.M, alloc); err != nil {
		return errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error())
	}
	if res := s.persistRemove(name, meta); res != nil {
		return *res
	}
	s.install(trial, alloc, hashes)
	s.syncPartitionState()
	s.met.removes.Add(1)
	s.maybeSnapshot()
	return verdictResult(http.StatusOK, NewVerdict(trial, s.cfg.M, alloc, nil))
}

func (s *Shard) install(sys task.System, alloc *core.Allocation, hashes []string) {
	s.sysHashes = hashes
	s.mu.Lock()
	s.sys, s.alloc = sys, alloc
	s.mu.Unlock()
}

func (s *Shard) handleAdmit(w http.ResponseWriter, r *http.Request) {
	traceID := s.nextTraceID()
	w.Header().Set("X-Trace-Id", traceID)
	var tk task.DAGTask
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&tk); err != nil {
		s.met.errors.Add(1)
		writeJSON(w, errResult(http.StatusBadRequest, "decoding task: "+err.Error()))
		return
	}
	if tk.Name == "" {
		s.met.errors.Add(1)
		writeJSON(w, errResult(http.StatusBadRequest, "task must carry a unique name"))
		return
	}
	var rec *obs.Recorder
	if r.URL.Query().Get("trace") == "1" {
		rec = obs.New(obs.DefaultLimits)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdmitTimeout)
	defer cancel()
	status, respBody := s.admitOp(ctx, &tk, traceID, rec, requestCluster(r))
	writeJSON(w, opResult{status: status, body: respBody})
}

func (s *Shard) handleRemove(w http.ResponseWriter, r *http.Request) {
	traceID := s.nextTraceID()
	w.Header().Set("X-Trace-Id", traceID)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AdmitTimeout)
	defer cancel()
	status, body := s.removeOp(ctx, r.PathValue("name"), traceID, requestCluster(r))
	writeJSON(w, opResult{status: status, body: body})
}

// requestCluster re-derives the cluster name a routed request addressed —
// path form first, X-Cluster header second — so handlers can annotate WAL
// records and flight entries without a signature change on the route table.
func requestCluster(r *http.Request) string {
	if c := r.PathValue("cluster"); c != "" {
		return c
	}
	return r.Header.Get(clusterHeader)
}

func (s *Shard) handleAllocation(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	sys, alloc := s.sys, s.alloc
	s.mu.RUnlock()
	writeJSON(w, verdictResult(http.StatusOK, NewVerdict(sys, s.cfg.M, alloc, nil)))
}

func varsHandler(m fmt.Stringer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.String())
	})
}

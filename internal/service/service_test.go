package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// newTestServer starts a Server plus an httptest front end, both torn down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func doJSON(t *testing.T, client *http.Client, method, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

func admitBody(t *testing.T, tk *task.DAGTask) []byte {
	t.Helper()
	data, err := json.Marshal(tk)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// example1Task is the paper's Example 1: low-density (δ = 9/16), lands on a
// shared processor.
func example1Task(name string) *task.DAGTask {
	return task.MustNew(name, dag.Example1(), dag.Example1D, dag.Example1T)
}

// trijob is a high-density task (δ = 3) whose MINPROCS grant is exactly 3
// processors: three independent jobs of WCET 5 with D = T = 5.
func trijob(name string) *task.DAGTask {
	return task.MustNew(name, dag.Independent(5, 5, 5), 5, 5)
}

func TestAdmitRemoveLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	c := ts.Client()

	status, body, _ := doJSON(t, c, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if status != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", status, body)
	}

	// Admit the paper's Example 1 task: accepted onto a shared processor.
	status, body, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("ex1")))
	if status != http.StatusOK {
		t.Fatalf("admit ex1: %d %s", status, body)
	}
	var v Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Schedulable || v.Dedicated != 0 || v.Shared != 4 || len(v.High) != 0 {
		t.Fatalf("ex1 verdict: %+v", v)
	}

	// Admit the high-density trijob: Phase 1 grants exactly 3 processors.
	status, body, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri")))
	if status != http.StatusOK {
		t.Fatalf("admit tri: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.High) != 1 || len(v.High[0].Procs) != 3 || v.Dedicated != 3 || v.Shared != 1 {
		t.Fatalf("tri verdict: %+v", v)
	}

	// GET /v1/allocation returns the same bytes as the admit response.
	status, allocBody, _ := doJSON(t, c, http.MethodGet, ts.URL+"/v1/allocation", nil)
	if status != http.StatusOK || !bytes.Equal(allocBody, body) {
		t.Fatalf("allocation bytes differ from admit response:\n%s\nvs\n%s", allocBody, body)
	}

	// Duplicate names are refused without running the analysis.
	status, body, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("ex1")))
	if status != http.StatusConflict || !strings.Contains(string(body), "already admitted") {
		t.Fatalf("duplicate admit: %d %s", status, body)
	}

	// Remove, then removing again 404s.
	status, _, _ = doJSON(t, c, http.MethodDelete, ts.URL+"/v1/tasks/tri", nil)
	if status != http.StatusOK {
		t.Fatalf("remove tri: %d", status)
	}
	status, _, _ = doJSON(t, c, http.MethodDelete, ts.URL+"/v1/tasks/tri", nil)
	if status != http.StatusNotFound {
		t.Fatalf("second remove: %d", status)
	}

	// Remove the last task: the empty state is trivially schedulable.
	status, body, _ = doJSON(t, c, http.MethodDelete, ts.URL+"/v1/tasks/ex1", nil)
	if status != http.StatusOK {
		t.Fatalf("remove ex1: %d", status)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Schedulable || v.Tasks != 0 || v.Shared != 4 {
		t.Fatalf("empty verdict: %+v", v)
	}

	// Malformed payloads and anonymous tasks are 400s.
	status, _, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", []byte("{"))
	if status != http.StatusBadRequest {
		t.Fatalf("malformed admit: %d", status)
	}
	status, _, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit",
		admitBody(t, task.MustNew("", dag.Singleton(1), 5, 5)))
	if status != http.StatusBadRequest {
		t.Fatalf("anonymous admit: %d", status)
	}
}

// TestRejectedAdmissionLeavesStateIdentical pins the trial-admission
// contract: a rejected admit returns the failure verdict but the installed
// allocation — byte for byte — is untouched.
func TestRejectedAdmissionLeavesStateIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 3})
	c := ts.Client()

	status, _, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri")))
	if status != http.StatusOK {
		t.Fatalf("setup admit: %d", status)
	}
	_, before, _ := doJSON(t, c, http.MethodGet, ts.URL+"/v1/allocation", nil)

	// A second trijob needs 3 more processors than remain: rejected.
	status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri2")))
	if status != http.StatusConflict {
		t.Fatalf("want 409, got %d: %s", status, body)
	}
	var v Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Schedulable || !strings.Contains(v.Reason, "high-density") {
		t.Fatalf("rejection verdict: %+v", v)
	}

	_, after, _ := doJSON(t, c, http.MethodGet, ts.URL+"/v1/allocation", nil)
	if !bytes.Equal(before, after) {
		t.Fatalf("rejected admission changed the allocation:\n%s\nvs\n%s", before, after)
	}
}

// TestConcurrentAdmitsRemovesReads hammers the server from many goroutines
// under -race: admissions and removals against concurrent allocation reads,
// with every observed state audited by core.Verify.
func TestConcurrentAdmitsRemovesReads(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 16, QueueBound: 256})
	c := ts.Client()

	const writers, readers, rounds = 6, 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				var tk *task.DAGTask
				if r.Intn(2) == 0 {
					tk = example1Task(name)
				} else {
					tk = task.MustNew(name, dag.Independent(2, 2), 4, 8)
				}
				status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, tk))
				if status != http.StatusOK && status != http.StatusConflict {
					t.Errorf("admit %s: %d %s", name, status, body)
				}
				if status == http.StatusOK && r.Intn(2) == 0 {
					if st, b, _ := doJSON(t, c, http.MethodDelete, ts.URL+"/v1/tasks/"+name, nil); st != http.StatusOK {
						t.Errorf("remove %s: %d %s", name, st, b)
					}
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*writers/2; i++ {
				// HTTP read path…
				status, _, _ := doJSON(t, c, http.MethodGet, ts.URL+"/v1/allocation", nil)
				if status != http.StatusOK {
					t.Errorf("allocation read: %d", status)
				}
				// …and a direct snapshot, audited: every state the server
				// ever exposes must pass the independent checker.
				sys, alloc := svc.Snapshot()
				if len(sys) == 0 {
					continue
				}
				if err := core.Verify(sys, 16, alloc); err != nil {
					t.Errorf("exposed state failed Verify: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	sys, alloc := svc.Snapshot()
	if len(sys) > 0 {
		if err := core.Verify(sys, 16, alloc); err != nil {
			t.Fatalf("final state failed Verify: %v", err)
		}
	}
}

// slowTask builds a task whose MINPROCS analysis takes long enough to keep
// the single-writer loop busy while the shedding test floods the queue.
func slowTask(name string) *task.DAGTask {
	r := rand.New(rand.NewSource(7))
	const n = 5000 // ≈ 0.5 s of Width + MINPROCS work on a container core
	b := dag.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddJob(task.Time(1 + r.Intn(3)))
	}
	for i := 0; i < n; i++ {
		for _, off := range []int{1, 7, 31} {
			if i+off < n && r.Intn(3) == 0 {
				b.AddEdge(i, i+off)
			}
		}
	}
	g := b.MustBuild()
	return task.MustNew(name, g, g.LongestChain()+10, g.LongestChain()+10)
}

func TestLoadShedding(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 64, QueueBound: 2, AdmitTimeout: 30 * time.Second})
	c := ts.Client()

	// Occupy the writer loop with an expensive analysis…
	heavy := admitBody(t, slowTask("heavy"))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", heavy)
	}()
	time.Sleep(50 * time.Millisecond)

	// …then flood: with a queue bound of 2 most of these must be shed.
	const flood = 24
	statuses := make([]int, flood)
	var retryAfter bool
	var mu sync.Mutex
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, hdr := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit",
				admitBody(t, example1Task(fmt.Sprintf("flood-%d", i))))
			mu.Lock()
			statuses[i] = status
			if hdr.Get("Retry-After") != "" {
				retryAfter = true
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	shed := 0
	for _, s := range statuses {
		if s == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed despite a full queue")
	}
	if !retryAfter {
		t.Fatal("shed responses lack Retry-After")
	}
}

func TestAdmitDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, AdmitTimeout: time.Nanosecond})
	c := ts.Client()
	status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("late")))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("want 504 under a 1ns admission deadline, got %d: %s", status, body)
	}
	// The allocation must still be the (empty) initial state.
	_, allocBody, _ := doJSON(t, c, http.MethodGet, ts.URL+"/v1/allocation", nil)
	var v Verdict
	if err := json.Unmarshal(allocBody, &v); err != nil {
		t.Fatal(err)
	}
	if v.Tasks != 0 {
		t.Fatalf("timed-out admission was installed: %+v", v)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	c := ts.Client()

	doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri")))
	doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("tri2"))) // rejected
	doJSON(t, c, http.MethodDelete, ts.URL+"/v1/tasks/tri", nil)

	status, body, _ := doJSON(t, c, http.MethodGet, ts.URL+"/debug/vars", nil)
	if status != http.StatusOK {
		t.Fatalf("debug/vars: %d", status)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("debug/vars is not JSON: %v\n%s", err, body)
	}
	want := map[string]float64{
		"admits_total":  1,
		"rejects_total": 1,
		"removes_total": 1,
	}
	for k, exp := range want {
		got, ok := vars[k].(float64)
		if !ok || got != exp {
			t.Errorf("%s = %v, want %v", k, vars[k], exp)
		}
	}
	for _, k := range []string{"cache_hits", "cache_misses", "cache_hit_rate", "queue_depth", "queue_bound",
		"admit_latency_p50_ns", "admit_latency_p99_ns", "tasks", "cache_entries"} {
		if _, ok := vars[k]; !ok {
			t.Errorf("debug/vars missing %s", k)
		}
	}
	// tri and tri2 share content: the second admission must hit the cache.
	if hits, _ := vars["cache_hits"].(float64); hits < 1 {
		t.Errorf("cache_hits = %v, want ≥ 1", vars["cache_hits"])
	}
}

func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{M: 0}); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := New(Config{M: 2, QueueBound: -1}); err == nil {
		t.Error("accepted negative queue bound")
	}
}

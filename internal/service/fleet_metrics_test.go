package service

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// promSamples parses a Prometheus text exposition into sample-line → value,
// keyed by the full series identity (name plus label set, if any).
func promSamples(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("non-numeric sample in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// sumSeries sums every sample of the named family: the bare series plus any
// labeled ones. The name must be a full metric name (no prefix matching).
func sumSeries(samples map[string]float64, name string) float64 {
	var total float64
	for key, v := range samples {
		if key == name || strings.HasPrefix(key, name+"{") {
			total += v
		}
	}
	return total
}

// TestFleetMetricsAggregationConcurrent drives mutations at every shard from
// concurrent clients — including duplicate admits (409) and removals of
// missing tasks (404) — while scraping /metrics in parallel, then checks on
// the quiesced server that every fleet-level family equals the sum of its
// per-shard series. Run under -race this also proves the scrape path is safe
// against the writer loops.
func TestFleetMetricsAggregationConcurrent(t *testing.T) {
	const (
		shards    = 4
		admitsPer = 8
	)
	svc, ts := newTestServer(t, Config{M: 8, Shards: shards})
	clusters := distinctClusters(t, svc, shards)
	c := ts.Client()

	var wg sync.WaitGroup
	for _, cl := range clusters {
		wg.Add(1)
		go func(cl string) {
			defer wg.Done()
			base := ts.URL + "/v1/clusters/" + cl
			for i := 0; i < admitsPer; i++ {
				doJSON(t, c, http.MethodPost, base+"/admit", admitBody(t, example1Task(fmt.Sprintf("%s-t%d", cl, i))))
			}
			// One duplicate admit and one removal of a missing task: both are
			// client errors the shard counts in errors_total.
			doJSON(t, c, http.MethodPost, base+"/admit", admitBody(t, example1Task(cl+"-t0")))
			doJSON(t, c, http.MethodDelete, base+"/tasks/"+cl+"-t0", nil)
			doJSON(t, c, http.MethodDelete, base+"/tasks/no-such-task", nil)
		}(cl)
	}
	// Scrape while the mutation storm is in flight: values are torn between
	// the per-shard and fleet sections of one scrape, so only the weak
	// invariant holds mid-flight — the fleet total (rendered later) is never
	// below the per-shard sum (rendered earlier). -race checks the rest.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 20; i++ {
			_, body, _ := doJSON(t, c, http.MethodGet, ts.URL+"/metrics", nil)
			s := promSamples(t, body)
			if shardSum, fleet := sumSeries(s, "fedschedd_admits_total"), s["fedschedd_fleet_admits_total"]; fleet < shardSum {
				t.Errorf("mid-flight scrape: fleet admits %v < per-shard sum %v", fleet, shardSum)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-scrapeDone

	_, body, _ := doJSON(t, c, http.MethodGet, ts.URL+"/metrics", nil)
	samples := promSamples(t, body)

	// Quiesced: every fleet family is exactly the sum of its shard series.
	for _, fam := range []struct{ shard, fleet string }{
		{"fedschedd_admits_total", "fedschedd_fleet_admits_total"},
		{"fedschedd_batch_admits_total", "fedschedd_fleet_batch_admits_total"},
		{"fedschedd_rejects_total", "fedschedd_fleet_rejects_total"},
		{"fedschedd_removes_total", "fedschedd_fleet_removes_total"},
		{"fedschedd_shed_total", "fedschedd_fleet_shed_total"},
		{"fedschedd_timeouts_total", "fedschedd_fleet_timeouts_total"},
		{"fedschedd_errors_total", "fedschedd_fleet_errors_total"},
		{"fedschedd_admit_latency_seconds_count", "fedschedd_fleet_admit_latency_seconds_count"},
		{"fedschedd_admit_latency_seconds_sum", "fedschedd_fleet_admit_latency_seconds_sum"},
	} {
		shardSum := sumSeries(samples, fam.shard)
		fleet, ok := samples[fam.fleet]
		if !ok {
			t.Fatalf("exposition lacks %s:\n%s", fam.fleet, body)
		}
		// The merge is exact in integer nanoseconds; summing the rendered
		// per-shard _sum seconds re-associates the float additions, so allow
		// one ulp-scale slack there. Counters must match exactly.
		if tol := 1e-12 * (1 + fleet); shardSum < fleet-tol || shardSum > fleet+tol {
			t.Errorf("%s = %v but per-shard %s sums to %v", fam.fleet, fleet, fam.shard, shardSum)
		}
	}

	// Absolute values are deterministic once the workload drains.
	total := float64(shards * admitsPer)
	if got := samples["fedschedd_fleet_admits_total"]; got != total {
		t.Errorf("fleet admits = %v, want %v", got, total)
	}
	if got := samples["fedschedd_fleet_removes_total"]; got != shards {
		t.Errorf("fleet removes = %v, want %v", got, float64(shards))
	}
	if got := samples["fedschedd_fleet_errors_total"]; got != 2*shards {
		t.Errorf("fleet errors = %v, want %v (one duplicate + one missing removal per cluster)", got, float64(2*shards))
	}
	if got := samples["fedschedd_fleet_tasks"]; got != total-shards {
		t.Errorf("fleet tasks = %v, want %v", got, total-shards)
	}
	// The SLO ledger saw every mutation exactly once: admits + the duplicate,
	// the removal and the missing removal, per cluster.
	if got, want := samples["fedschedd_slo_requests_total"], float64(shards*(admitsPer+3)); got != want {
		t.Errorf("slo requests = %v, want %v", got, want)
	}
	if got := samples["fedschedd_slo_error_burn_rate"]; got != 0 {
		t.Errorf("error burn rate = %v after a clean run (4xx spends no error budget), want 0", got)
	}
}

// TestFleetRedirectHeaderAddressed covers the redirect paths TestFleetRedirect
// leaves out: header-addressed mutations and DELETEs on the path family both
// 307 to the owning member with the original request URI preserved.
func TestFleetRedirectHeaderAddressed(t *testing.T) {
	fleet := []string{"http://self.example", "http://peer.example"}
	svc, ts := newTestServer(t, Config{M: 4, Fleet: fleet, Self: 0})
	var theirs string
	for i := 0; theirs == "" && i < 65536; i++ {
		if name := fmt.Sprintf("c%d", i); svc.fleet.owner(name) != 0 {
			theirs = name
		}
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/admit",
		bytes.NewReader(admitBody(t, example1Task("via-header"))))
	req.Header.Set(clusterHeader, theirs)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("header-addressed foreign cluster = %d, want 307", resp.StatusCode)
	}
	// The legacy URI carries the cluster in the header, not the path: the
	// Location must preserve the URI so the replayed request (which keeps its
	// headers through a 307) lands on the same cluster at the owner.
	if loc := resp.Header.Get("Location"); loc != "http://peer.example/v1/admit" {
		t.Errorf("Location = %q, want %q", loc, "http://peer.example/v1/admit")
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/clusters/"+theirs+"/tasks/x", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("DELETE on foreign cluster = %d, want 307", resp.StatusCode)
	}
	if want := "http://peer.example/v1/clusters/" + theirs + "/tasks/x"; resp.Header.Get("Location") != want {
		t.Errorf("DELETE Location = %q, want %q", resp.Header.Get("Location"), want)
	}

	// /metrics and the flight recorder stay local even when every data
	// cluster is foreign.
	for _, path := range []string{"/metrics", "/debug/traces"} {
		if status, _, _ := doJSON(t, client, http.MethodGet, ts.URL+path, nil); status != http.StatusOK {
			t.Errorf("%s = %d on a fleet member, want 200 (never redirected)", path, status)
		}
	}
}

// TestSLOBurnRates pins the burn-rate arithmetic: rate 1.0 means the window
// consumes its error budget exactly at the objective's allowed pace.
func TestSLOBurnRates(t *testing.T) {
	st := newSLOState(5*time.Millisecond, time.Minute)

	// 99 fast admits + 1 slow: exactly the 1% the 99% objective allows.
	for i := 0; i < 99; i++ {
		st.observe("admit", http.StatusOK, time.Millisecond)
	}
	st.observe("admit", http.StatusOK, 50*time.Millisecond)
	if got := st.latencyBurnRate(); got < 0.999 || got > 1.001 {
		t.Errorf("latency burn rate = %v, want 1.0 (1%% slow under a 99%% objective)", got)
	}
	// One 500 in 100 requests burns 10× the 99.9% objective's budget.
	st.observe("remove", http.StatusInternalServerError, time.Millisecond)
	if got, want := st.errorBurnRate(), (1.0/101.0)/0.001; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("error burn rate = %v, want %v", got, want)
	}

	// Sheds (429) spend error budget; client errors (4xx) and slow removals
	// spend none.
	before := st.errBad.Value()
	st.observe("admit", http.StatusTooManyRequests, time.Millisecond)
	st.observe("admit", http.StatusConflict, time.Millisecond)
	st.observe("remove", http.StatusOK, time.Second)
	if got := st.errBad.Value(); got != before+1 {
		t.Errorf("errBad = %d after 429+409, want %d (only the shed counts)", got, before+1)
	}
	if got := st.latBad.Value(); got != 1 {
		t.Errorf("latBad = %d, want 1 (the latency budget covers admits only)", got)
	}

	// Nil receiver and empty windows are inert: shards run with no SLO state
	// in unit tests that construct them directly.
	var nilState *sloState
	nilState.observe("admit", http.StatusOK, time.Hour)
	if got := newSLOState(0, 0).latencyBurnRate(); got != 0 {
		t.Errorf("empty window burn rate = %v, want 0", got)
	}
}

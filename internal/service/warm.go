package service

import (
	"fmt"
	"net/http"

	"fedsched/internal/core"
	"fedsched/internal/obs"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// This file is the shard's warm admission path: untraced single low-density
// mutations are served from the live partition.State via core.AdmitLow /
// core.RemoveLow instead of re-running the full FEDCONS analysis, then
// audited with core.VerifyDelta before the identical persist/install/verdict
// sequence as the full path. Everything that could diverge from a
// from-scratch analysis falls back to it:
//
//   - traced requests (rec != nil): the decision trace must come from the
//     batch code that produces -trace/-explain bytes;
//   - high-density tasks: they change Phase-1 sizing, processor numbering
//     and the shared-processor set, so Phase 2 must re-partition anyway;
//   - the first admission into an empty shard (no base allocation to extend)
//     and batch admissions (one WAL record, atomic semantics);
//   - a missing or inconsistent partition.State (never expected; the state
//     is re-derived from the installed allocation after every full-path
//     install and on recovery);
//   - Config.FullRepartition, the operator escape hatch — and the oracle
//     configuration the warm-path differential tests compare bytes against;
//   - the typed policy: its Phase-2 result is per-type partitions stitched
//     into one slice, but the flat partition.State is type-blind — its
//     first-fit would happily place a task on a wrong-type processor, which
//     the typed verifier then rejects. Typed mutations always re-analyze.

// fastAdmit serves one low-density admission from the live partition state.
// ok is false when the warm path does not apply and the caller must run the
// full analysis.
func (s *Shard) fastAdmit(tk *task.DAGTask, rec *obs.Recorder, meta mutMeta) (opResult, bool) {
	if s.cfg.FullRepartition || rec != nil || s.alloc == nil || tk.HighDensity() ||
		s.cfg.Options.Policy == core.PolicyTyped || !s.pstateConsistent() {
		return opResult{}, false
	}
	// The warm path extends the installed shape in place, so it only applies
	// when that shape is the one the configured policy would produce; a
	// strict-shape base under a split policy (the fallback engaged) must go
	// through the full analysis, which retries the split first.
	if s.alloc.Policy != s.cfg.Options.Policy {
		return opResult{}, false
	}
	trial := append(s.sys.Clone(), tk)
	alloc, err := core.AdmitLow(s.alloc, s.pstate, tk)
	if err != nil {
		if s.alloc.Policy != "" {
			// A split-shape incremental failure is not final: the batch path
			// falls back to strict FEDCONS, which may still accept.
			return opResult{}, false
		}
		s.met.rejects.Add(1)
		// A warm-path rejection carries no span tree (the incremental test is
		// not the traced code path), but the decision itself is still
		// retained: metadata-only entries are how a rejection that never
		// asked for ?trace=1 stays explainable at all.
		res := verdictResult(http.StatusConflict, NewVerdict(trial, s.cfg.M, nil, err))
		return s.noteFlight(res, meta, "admit", tk.Name, false, nil), true
	}
	if err := core.VerifyDelta(trial, s.cfg.M, alloc, s.sys, s.alloc); err != nil {
		// The state already committed the admission: re-derive it from the
		// (unchanged) installed allocation before refusing.
		s.syncPartitionState()
		return errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error()), true
	}
	hash := s.cache.hashOf(tk).String()
	if res := s.persistAdmit([]*task.DAGTask{tk}, []string{hash}, meta); res != nil {
		s.syncPartitionState()
		return *res, true
	}
	s.install(trial, alloc, append(append([]string(nil), s.sysHashes...), hash))
	s.met.admits.Add(1)
	s.maybeSnapshot()
	return verdictResult(http.StatusOK, NewVerdict(trial, s.cfg.M, alloc, nil)), true
}

// fastRemove serves one low-density removal from the live partition state.
// idx is the task's position in s.sys; trial/hashes are the spliced system
// and hash list the caller already built (shared with the full path).
func (s *Shard) fastRemove(name string, idx int, trial task.System, hashes []string, meta mutMeta) (opResult, bool) {
	if s.cfg.FullRepartition || s.alloc == nil || s.sys[idx].HighDensity() ||
		s.cfg.Options.Policy == core.PolicyTyped || !s.pstateConsistent() {
		return opResult{}, false
	}
	if s.alloc.Policy != s.cfg.Options.Policy {
		return opResult{}, false // see fastAdmit: shape must match the policy
	}
	alloc, err := core.RemoveLow(s.alloc, s.pstate, idx)
	if err != nil {
		if s.alloc.Policy != "" {
			// The full analysis re-partitions from scratch and may still
			// accept the shrunk system (or fall back to strict FEDCONS).
			return opResult{}, false
		}
		// Same non-monotonicity surface as the full path: keep the verified
		// old state installed and report the identical failure.
		s.met.errors.Add(1)
		res := errResult(http.StatusConflict, fmt.Sprintf("system unschedulable after removing %q: %v", name, err))
		return s.noteFlight(res, meta, "remove", name, false, nil), true
	}
	if err := core.VerifyDelta(trial, s.cfg.M, alloc, s.sys, s.alloc); err != nil {
		s.syncPartitionState()
		return errResult(http.StatusInternalServerError, "allocation failed verification: "+err.Error()), true
	}
	if res := s.persistRemove(name, meta); res != nil {
		s.syncPartitionState()
		return *res, true
	}
	s.install(trial, alloc, hashes)
	s.met.removes.Add(1)
	s.maybeSnapshot()
	return verdictResult(http.StatusOK, NewVerdict(trial, s.cfg.M, alloc, nil)), true
}

// pstateConsistent reports whether the live partition state plausibly mirrors
// the installed allocation. The two are maintained in lockstep, so a mismatch
// means a bug — the warm path declines and the full analysis (which ends in
// syncPartitionState) repairs it, at full-repartition cost but with correct
// output.
func (s *Shard) pstateConsistent() bool {
	return s.pstate != nil &&
		s.pstate.Len() == len(s.alloc.Servers)+len(s.alloc.LowIndices) &&
		s.pstate.M() == len(s.alloc.SharedProcs)
}

// syncPartitionState re-derives pstate from the installed system+allocation.
// Called after every full-path install, after recovery, and to roll back a
// warm-path state mutation that could not be installed. A rebuild failure
// (never expected: the allocation passed core.Verify) only disables the warm
// path.
func (s *Shard) syncPartitionState() {
	if s.alloc == nil {
		s.pstate = nil
		return
	}
	// The Phase-2 system is shape-dependent: reservation servers (if any)
	// first, then the low-density tasks — exactly what the partitioner saw.
	combined, err := core.PartitionSystem(s.sys, s.alloc)
	if err != nil {
		s.pstate = nil
		return
	}
	st, err := partition.Rebuild(combined, len(s.alloc.SharedProcs), s.alloc.Low, s.cfg.Options.Partition)
	if err != nil {
		s.pstate = nil
		return
	}
	s.pstate = st
}

package service

import (
	"bytes"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"fedsched/internal/obs"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "fedschedd"

// promHandler renders the daemon's metrics in the Prometheus text exposition
// format (version 0.0.4), derived from the same expvar maps that back
// /debug/vars so the two views can never disagree. Keys ending in "_total"
// are typed counter, everything else gauge; the admit_latency_p* expvar keys
// are skipped in favor of the full fedschedd_admit_latency_seconds histogram
// rendered from the underlying obs.Histogram. expvar.Map.Do iterates keys in
// sorted order, so the exposition is deterministic.
//
// A single-shard server renders exactly the pre-shard exposition (no labels);
// a multi-shard server emits one # TYPE line per metric followed by one
// sample per shard labeled {shard="<i>"}.
func (s *Server) promHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if len(s.shards) == 1 {
			sh := s.shards[0]
			sh.promVars.Do(func(kv expvar.KeyValue) {
				if strings.HasPrefix(kv.Key, "admit_latency_") {
					return
				}
				val, ok := promValue(kv.Value)
				if !ok {
					return
				}
				name := promNamespace + "_" + kv.Key
				fmt.Fprintf(&buf, "# TYPE %s %s\n%s %s\n", name, promType(kv.Key), name, val)
			})
			promHistogram(&buf, promNamespace+"_admit_latency_seconds", "", &sh.met.latency)
		} else {
			// Shard 0's sorted key iteration drives the layout; every shard
			// has the same key set (all shards share one Config).
			s.shards[0].promVars.Do(func(kv expvar.KeyValue) {
				if strings.HasPrefix(kv.Key, "admit_latency_") {
					return
				}
				if _, ok := promValue(kv.Value); !ok {
					return
				}
				name := promNamespace + "_" + kv.Key
				fmt.Fprintf(&buf, "# TYPE %s %s\n", name, promType(kv.Key))
				for _, sh := range s.shards {
					val, ok := promValue(sh.promVars.Get(kv.Key))
					if !ok {
						continue
					}
					fmt.Fprintf(&buf, "%s{shard=%q} %s\n", name, strconv.Itoa(sh.id), val)
				}
			})
			for _, sh := range s.shards {
				promHistogram(&buf, promNamespace+"_admit_latency_seconds",
					fmt.Sprintf("shard=%q,", strconv.Itoa(sh.id)), &sh.met.latency)
			}
		}
		// Fleet families follow the per-shard exposition: the exact bucket-wise
		// merge of every shard's latency histogram, then the registry's
		// fleet sums and SLO burn-rate ledger (families sorted by name).
		promHistogram(&buf, promNamespace+"_fleet_admit_latency_seconds", "", s.fleetLatency())
		s.registry.WritePrometheus(&buf)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}

// promType maps an expvar key to its Prometheus metric type.
func promType(key string) string {
	if strings.HasSuffix(key, "_total") {
		return "counter"
	}
	return "gauge"
}

// promValue renders one expvar value as a Prometheus sample value.
func promValue(v expvar.Var) (string, bool) {
	switch x := v.(type) {
	case *expvar.Int:
		return strconv.FormatInt(x.Value(), 10), true
	case *expvar.Float:
		return strconv.FormatFloat(x.Value(), 'g', -1, 64), true
	case expvar.Func:
		switch n := x.Value().(type) {
		case int:
			return strconv.Itoa(n), true
		case int64:
			return strconv.FormatInt(n, 10), true
		case float64:
			return strconv.FormatFloat(n, 'g', -1, 64), true
		}
	}
	return "", false
}

// promHistogram writes one obs.Histogram in Prometheus histogram form:
// cumulative buckets keyed by upper bound in seconds, then _sum and _count.
// extraLabels, when non-empty, is prepended inside each bucket's label set
// and appended (braced) to _sum/_count; it must end with a comma. The sample
// block itself comes from obs.WriteHistogram, which renders from a single
// consistent snapshot.
func promHistogram(buf *bytes.Buffer, name, extraLabels string, h *obs.Histogram) {
	if extraLabels == "" {
		fmt.Fprintf(buf, "# TYPE %s histogram\n", name)
	} else if strings.Contains(extraLabels, `shard="0"`) {
		// One # TYPE line for the whole labeled family.
		fmt.Fprintf(buf, "# TYPE %s histogram\n", name)
	}
	obs.WriteHistogram(buf, name, extraLabels, h)
}

package service

import (
	"bytes"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"fedsched/internal/obs"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "fedschedd"

// promHandler renders the daemon's metrics in the Prometheus text exposition
// format (version 0.0.4), derived from the same expvar map that backs
// /debug/vars so the two views can never disagree. Keys ending in "_total"
// are typed counter, everything else gauge; the admit_latency_p* expvar keys
// are skipped in favor of the full fedschedd_admit_latency_seconds histogram
// rendered from the underlying obs.Histogram. expvar.Map.Do iterates keys in
// sorted order, so the exposition is deterministic.
func (s *Server) promHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		s.promVars.Do(func(kv expvar.KeyValue) {
			if strings.HasPrefix(kv.Key, "admit_latency_") {
				return
			}
			val, ok := promValue(kv.Value)
			if !ok {
				return
			}
			name := promNamespace + "_" + kv.Key
			typ := "gauge"
			if strings.HasSuffix(kv.Key, "_total") {
				typ = "counter"
			}
			fmt.Fprintf(&buf, "# TYPE %s %s\n%s %s\n", name, typ, name, val)
		})
		promHistogram(&buf, promNamespace+"_admit_latency_seconds", &s.met.latency)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}

// promValue renders one expvar value as a Prometheus sample value.
func promValue(v expvar.Var) (string, bool) {
	switch x := v.(type) {
	case *expvar.Int:
		return strconv.FormatInt(x.Value(), 10), true
	case *expvar.Float:
		return strconv.FormatFloat(x.Value(), 'g', -1, 64), true
	case expvar.Func:
		switch n := x.Value().(type) {
		case int:
			return strconv.Itoa(n), true
		case int64:
			return strconv.FormatInt(n, 10), true
		case float64:
			return strconv.FormatFloat(n, 'g', -1, 64), true
		}
	}
	return "", false
}

// promHistogram writes one obs.Histogram in Prometheus histogram form:
// cumulative buckets keyed by upper bound in seconds, then _sum and _count.
func promHistogram(buf *bytes.Buffer, name string, h *obs.Histogram) {
	fmt.Fprintf(buf, "# TYPE %s histogram\n", name)
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		le := strconv.FormatFloat(float64(b.UpperNs)/1e9, 'g', -1, 64)
		fmt.Fprintf(buf, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(buf, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(buf, "%s_sum %s\n", name, strconv.FormatFloat(float64(h.SumNs())/1e9, 'g', -1, 64))
	fmt.Fprintf(buf, "%s_count %d\n", name, h.Count())
}

package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// ringVirtualNodes is how many points each shard contributes to the ring.
// Enough for ±a few percent balance across shards without making owner
// lookups (binary search over shards×64 points) measurable.
const ringVirtualNodes = 64

// hashRing is a consistent-hash ring over n slots (local shards or fleet
// members). Cluster names hash onto the same 64-bit circle as the slots'
// virtual nodes; a cluster is owned by the first slot point at or after its
// hash. Ring placement depends only on the slot index, so every fleet member
// — and every restart — computes identical ownership, and growing from n to
// n+1 slots moves only the keys the new slot's points capture.
type hashRing struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	slot int
}

func newHashRing(n int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, n*ringVirtualNodes)}
	for slot := 0; slot < n; slot++ {
		for v := 0; v < ringVirtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("slot-%d-vn-%d", slot, v)),
				slot: slot,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// owner maps a cluster name to its slot: the successor point on the ring.
func (r *hashRing) owner(cluster string) int {
	h := hash64(cluster)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring's first point succeeds the highest hash
	}
	return r.points[i].slot
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256, the same family
// as core.TaskHash's content addressing, so placement is stable across
// processes, platforms and restarts (unlike maphash or map iteration order).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// clusterHeader names a request's admission domain on the legacy
// (unprefixed) API paths.
const clusterHeader = "X-Cluster"

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/admit        trial-admit a DAG task (body: task JSON; ?trace=1
//	                        embeds the FEDCONS decision trace in the verdict)
//	POST   /v1/admit/batch  trial-admit a task list all-or-nothing (body:
//	                        {"tasks": [...]}; cold Phase-1 analyses run on
//	                        the Options.Par worker pool)
//	DELETE /v1/tasks/{name} remove an admitted task
//	GET    /v1/allocation   current verdict + allocation
//	GET    /v1/healthz      liveness
//	GET    /debug/vars      expvar metrics
//	GET    /debug/traces    flight recorder: retained decision entries, JSONL
//	GET    /debug/traces/{id}  one retained decision trace by trace ID
//	GET    /metrics         Prometheus text exposition
//
// Every data path also exists under /v1/clusters/{cluster}/... — e.g.
// POST /v1/clusters/payments/admit — naming the admission domain in the
// path; the unprefixed paths read the domain from the X-Cluster header
// (absent header = cluster ""). Each cluster maps to one shard by
// consistent hashing, so requests for different clusters never contend.
// With Config.Fleet set, a cluster owned by another fleet member is
// answered with a 307 redirect to that member.
//
// Every mutating response carries an X-Trace-Id header; shed and timed-out
// requests additionally echo the ID in the error body.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Legacy paths: cluster from the X-Cluster header.
	mux.HandleFunc("POST /v1/admit", s.route(headerCluster, (*Shard).handleAdmit))
	mux.HandleFunc("POST /v1/admit/batch", s.route(headerCluster, (*Shard).handleAdmitBatch))
	mux.HandleFunc("DELETE /v1/tasks/{name}", s.route(headerCluster, (*Shard).handleRemove))
	mux.HandleFunc("GET /v1/allocation", s.route(headerCluster, (*Shard).handleAllocation))
	// Path-addressed cluster family.
	mux.HandleFunc("POST /v1/clusters/{cluster}/admit", s.route(pathCluster, (*Shard).handleAdmit))
	mux.HandleFunc("POST /v1/clusters/{cluster}/admit/batch", s.route(pathCluster, (*Shard).handleAdmitBatch))
	mux.HandleFunc("DELETE /v1/clusters/{cluster}/tasks/{name}", s.route(pathCluster, (*Shard).handleRemove))
	mux.HandleFunc("GET /v1/clusters/{cluster}/allocation", s.route(pathCluster, (*Shard).handleAllocation))
	// Process-level endpoints: never redirected, always local.
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("GET /debug/vars", s.varsAll())
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	mux.Handle("GET /metrics", s.promHandler())
	return mux
}

// headerCluster and pathCluster extract a request's cluster name.
func headerCluster(r *http.Request) string { return r.Header.Get(clusterHeader) }
func pathCluster(r *http.Request) string   { return r.PathValue("cluster") }

// route wraps a shard handler with cluster resolution: extract the cluster
// name, redirect if another fleet member owns it, otherwise dispatch to the
// owning local shard.
func (s *Server) route(cluster func(*http.Request) string, h func(*Shard, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := cluster(r)
		if s.fleet != nil {
			if member := s.fleet.owner(name); member != s.cfg.Self {
				// 307 preserves the method and body, so a redirected POST
				// replays the admission verbatim against the owner.
				http.Redirect(w, r, s.cfg.Fleet[member]+r.URL.RequestURI(), http.StatusTemporaryRedirect)
				return
			}
		}
		h(s.shards[s.ring.owner(name)], w, r)
	}
}

// varsAll serves /debug/vars. A single-shard server exposes its shard's map
// directly — byte-identical to the pre-shard daemon — while a multi-shard
// server nests each shard's map under "shard_<i>".
func (s *Server) varsAll() http.Handler {
	if len(s.shards) == 1 {
		return s.shards[0].varsMap
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		parts := make(map[string]json.RawMessage, len(s.shards))
		for _, sh := range s.shards {
			parts[fmt.Sprintf("shard_%d", sh.id)] = json.RawMessage(sh.promVars.String())
		}
		out, _ := json.MarshalIndent(parts, "", "  ")
		w.Write(append(out, '\n'))
	})
}

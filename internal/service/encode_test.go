package service

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"fedsched/internal/task"
)

// refEncode is the two-pass stdlib rendering appendFast must reproduce
// byte-for-byte wherever it claims to apply.
func refEncode(t *testing.T, v Verdict) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("reference MarshalIndent: %v", err)
	}
	return append(data, '\n')
}

func randVerdict(r *rand.Rand) Verdict {
	floats := []float64{0, 1, 1.5, 0.1, 9.0 / 16.0, 123456789.123,
		1e-7, 2.5e-9, 1e21, 3.25e22, -4.75, -1e-8,
		math.SmallestNonzeroFloat64, math.MaxFloat64, r.Float64() * 100}
	names := []string{"probe", "t0", "a_very_long_task-name.42", "x"}
	v := Verdict{
		Schedulable: r.Intn(2) == 0,
		Processors:  r.Intn(4096),
		Tasks:       r.Intn(200),
		USum:        floats[r.Intn(len(floats))],
		DensitySum:  floats[r.Intn(len(floats))],
		Dedicated:   r.Intn(100),
		Shared:      r.Intn(100),
	}
	for i := 0; i < r.Intn(4); i++ {
		h := HighGrant{
			Task:     names[r.Intn(len(names))],
			Density:  floats[r.Intn(len(floats))],
			Makespan: task.Time(r.Int63n(1 << 40)),
			Deadline: task.Time(r.Int63n(1 << 40)),
		}
		switch r.Intn(4) {
		case 0: // nil procs stays nil (encodes as null)
		case 1:
			h.Procs = []int{}
		default:
			for j := 0; j < 1+r.Intn(5); j++ {
				h.Procs = append(h.Procs, r.Intn(4096))
			}
		}
		v.High = append(v.High, h)
	}
	for i := 0; i < r.Intn(4); i++ {
		p := SharedProc{Proc: r.Intn(4096), Tasks: []string{}}
		if r.Intn(4) == 0 {
			p.Tasks = nil
		}
		for j := 0; j < r.Intn(4); j++ {
			p.Tasks = append(p.Tasks, names[r.Intn(len(names))])
		}
		v.SharedProcs = append(v.SharedProcs, p)
	}
	if r.Intn(3) == 0 {
		v.Reason = "system unschedulable: insufficient capacity"
	}
	return v
}

// TestEncodeFastMatchesStdlib pins the single-pass verdict encoder against
// encoding/json on randomized verdicts covering every field shape the daemon
// produces: nil/empty/populated arrays, both float notations, omitted and
// present reason.
func TestEncodeFastMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	taken := 0
	for trial := 0; trial < 4000; trial++ {
		v := randVerdict(r)
		fast, ok := v.appendFast()
		if !ok {
			t.Fatalf("trial %d: fast path refused a plain verdict: %+v", trial, v)
		}
		taken++
		if want := refEncode(t, v); !bytes.Equal(fast, want) {
			t.Fatalf("trial %d: encoders diverge\nfast:\n%s\nstdlib:\n%s\nverdict: %+v",
				trial, fast, want, v)
		}
	}
	if taken == 0 {
		t.Fatal("fast path never exercised")
	}
}

// TestEncodeFastFallsBack pins that every input the single-pass encoder
// cannot render verbatim is refused — and that Encode then still emits the
// stdlib bytes.
func TestEncodeFastFallsBack(t *testing.T) {
	cases := map[string]Verdict{
		"trace present":   {Trace: json.RawMessage(`[{"name":"fedcons"}]`)},
		"escaped reason":  {Reason: `task "x" <rejected> & dropped`},
		"utf8 task name":  {High: []HighGrant{{Task: "täsk"}}},
		"control char":    {SharedProcs: []SharedProc{{Tasks: []string{"a\tb"}}}},
		"nan usum":        {USum: math.NaN()},
		"inf density":     {High: []HighGrant{{Task: "h", Density: math.Inf(1)}}},
		"inf densitySum":  {DensitySum: math.Inf(-1)},
		"backslash":       {Reason: `path\to\nowhere`},
		"high ascii name": {SharedProcs: []SharedProc{{Tasks: []string{string([]byte{0x80})}}}},
	}
	for name, v := range cases {
		if _, ok := v.appendFast(); ok {
			t.Errorf("%s: fast path accepted input it cannot render verbatim", name)
			continue
		}
		if name == "nan usum" || name == "inf density" || name == "inf densitySum" {
			if _, err := v.Encode(); err == nil {
				t.Errorf("%s: Encode succeeded on a non-finite float", name)
			}
			continue
		}
		got, err := v.Encode()
		if err != nil {
			t.Errorf("%s: Encode failed: %v", name, err)
			continue
		}
		if want := refEncode(t, v); !bytes.Equal(got, want) {
			t.Errorf("%s: fallback bytes diverge from stdlib", name)
		}
	}
}

// TestEncodeFastFloatNotation nails the two stdlib float spellings the fast
// encoder must reproduce, including the exponent's leading-zero strip.
func TestEncodeFastFloatNotation(t *testing.T) {
	cases := map[float64]string{
		0:          "0",
		1.5:        "1.5",
		9.0 / 16.0: "0.5625",
		1e-7:       "1e-7",
		2.5e-9:     "2.5e-9",
		1e21:       "1e+21",
		3.25e22:    "3.25e+22",
		-1e-8:      "-1e-8",
	}
	for f, want := range cases {
		if got := string(appendJSONFloat(nil, f)); got != want {
			t.Errorf("appendJSONFloat(%g) = %q, want %q", f, got, want)
		}
	}
}

package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsExpositionGolden pins the full Prometheus text exposition of a
// fresh server: every metric name, type line and zero value, in order. A
// fresh server has made no observations, so the page is fully deterministic.
func TestMetricsExpositionGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, QueueBound: 8})
	status, body, hdr := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	const want = `# TYPE fedschedd_admits_total counter
fedschedd_admits_total 0
# TYPE fedschedd_batch_admits_total counter
fedschedd_batch_admits_total 0
# TYPE fedschedd_cache_entries gauge
fedschedd_cache_entries 0
# TYPE fedschedd_cache_hit_rate gauge
fedschedd_cache_hit_rate 0
# TYPE fedschedd_cache_hits gauge
fedschedd_cache_hits 0
# TYPE fedschedd_cache_misses gauge
fedschedd_cache_misses 0
# TYPE fedschedd_errors_total counter
fedschedd_errors_total 0
# TYPE fedschedd_queue_bound gauge
fedschedd_queue_bound 8
# TYPE fedschedd_queue_depth gauge
fedschedd_queue_depth 0
# TYPE fedschedd_rejects_total counter
fedschedd_rejects_total 0
# TYPE fedschedd_removes_total counter
fedschedd_removes_total 0
# TYPE fedschedd_shed_total counter
fedschedd_shed_total 0
# TYPE fedschedd_tasks gauge
fedschedd_tasks 0
# TYPE fedschedd_timeouts_total counter
fedschedd_timeouts_total 0
# TYPE fedschedd_admit_latency_seconds histogram
fedschedd_admit_latency_seconds_bucket{le="+Inf"} 0
fedschedd_admit_latency_seconds_sum 0
fedschedd_admit_latency_seconds_count 0
# TYPE fedschedd_fleet_admit_latency_seconds histogram
fedschedd_fleet_admit_latency_seconds_bucket{le="+Inf"} 0
fedschedd_fleet_admit_latency_seconds_sum 0
fedschedd_fleet_admit_latency_seconds_count 0
# TYPE fedschedd_fleet_admits_total counter
fedschedd_fleet_admits_total 0
# TYPE fedschedd_fleet_batch_admits_total counter
fedschedd_fleet_batch_admits_total 0
# TYPE fedschedd_fleet_errors_total counter
fedschedd_fleet_errors_total 0
# TYPE fedschedd_fleet_rejects_total counter
fedschedd_fleet_rejects_total 0
# TYPE fedschedd_fleet_removes_total counter
fedschedd_fleet_removes_total 0
# TYPE fedschedd_fleet_shards gauge
fedschedd_fleet_shards 1
# TYPE fedschedd_fleet_shed_total counter
fedschedd_fleet_shed_total 0
# TYPE fedschedd_fleet_tasks gauge
fedschedd_fleet_tasks 0
# TYPE fedschedd_fleet_timeouts_total counter
fedschedd_fleet_timeouts_total 0
# TYPE fedschedd_slo_admit_latency_budget_seconds gauge
fedschedd_slo_admit_latency_budget_seconds 0.005
# TYPE fedschedd_slo_admit_latency_burn_rate gauge
fedschedd_slo_admit_latency_burn_rate 0
# TYPE fedschedd_slo_admit_latency_over_budget_total counter
fedschedd_slo_admit_latency_over_budget_total 0
# TYPE fedschedd_slo_error_burn_rate gauge
fedschedd_slo_error_burn_rate 0
# TYPE fedschedd_slo_errors_total counter
fedschedd_slo_errors_total 0
# TYPE fedschedd_slo_requests_total counter
fedschedd_slo_requests_total 0
# TYPE fedschedd_slo_window_seconds gauge
fedschedd_slo_window_seconds 60
`
	if string(body) != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

// TestMetricsExpositionAfterAdmit checks counters move and the latency
// histogram gains cumulative buckets that parse as a valid exposition.
func TestMetricsExpositionAfterAdmit(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	c := ts.Client()
	if status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("e1"))); status != http.StatusOK {
		t.Fatalf("admit = %d: %s", status, body)
	}
	_, body, _ := doJSON(t, c, http.MethodGet, ts.URL+"/metrics", nil)
	text := string(body)
	if !strings.Contains(text, "fedschedd_admits_total 1\n") {
		t.Errorf("admits_total not 1:\n%s", text)
	}
	if !strings.Contains(text, "fedschedd_admit_latency_seconds_count 1\n") {
		t.Errorf("latency count not 1:\n%s", text)
	}
	if !strings.Contains(text, `fedschedd_admit_latency_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("+Inf bucket not cumulative:\n%s", text)
	}
}

func TestAdmitTraceIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	status, _, hdr := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("e1")))
	if status != http.StatusOK {
		t.Fatalf("admit = %d", status)
	}
	id := hdr.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no X-Trace-Id on admit response")
	}
	_, _, hdr2 := doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/tasks/e1", nil)
	id2 := hdr2.Get("X-Trace-Id")
	if id2 == "" || id2 == id {
		t.Errorf("remove trace ID %q (admit was %q): want fresh non-empty", id2, id)
	}
}

// TestShedBodyCarriesTraceID fills the queue so a request is shed, and
// asserts the 429 body names the trace ID from the header.
func TestShedBodyCarriesTraceID(t *testing.T) {
	svc, ts := newTestServer(t, Config{M: 4, QueueBound: 1})
	// Stall the writer loop with a request that blocks until released.
	release := make(chan struct{})
	blocked := make(chan struct{})
	go svc.submit(context.Background(), "admit", "stall", func() opResult {
		close(blocked)
		<-release
		return opResult{status: http.StatusOK}
	})
	<-blocked
	// Fill the queue.
	go svc.submit(context.Background(), "admit", "fill", func() opResult { return opResult{status: http.StatusOK} })
	deadline := time.Now().Add(time.Second)
	for len(svc.reqs) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	status, body, hdr := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("x")))
	close(release)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("429 body not JSON: %s", body)
	}
	if e["trace_id"] == "" || e["trace_id"] != hdr.Get("X-Trace-Id") {
		t.Errorf("429 body trace_id = %q, header %q", e["trace_id"], hdr.Get("X-Trace-Id"))
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 lost its Retry-After header")
	}
}

// TestAdmitInlineTrace exercises ?trace=1: the verdict embeds a span array
// whose root is fedcons with timing fields, and the cache attr flips from
// miss to hit when the same DAG returns.
func TestAdmitInlineTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	c := ts.Client()
	status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit?trace=1", admitBody(t, trijob("h1")))
	if status != http.StatusOK {
		t.Fatalf("admit = %d: %s", status, body)
	}
	var v struct {
		Trace []struct {
			ID     int            `json:"id"`
			Parent int            `json:"parent"`
			Name   string         `json:"name"`
			DurNs  *int64         `json:"dur_ns"`
			Attrs  map[string]any `json:"attrs"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Trace) == 0 || v.Trace[0].Name != "fedcons" {
		t.Fatalf("trace = %+v", v.Trace)
	}
	if v.Trace[0].DurNs == nil {
		t.Error("inline trace lacks timings")
	}
	var taskSpan map[string]any
	for _, sp := range v.Trace {
		if sp.Name == "task" && sp.Attrs["task"] == "h1" {
			taskSpan = sp.Attrs
		}
	}
	if taskSpan == nil {
		t.Fatal("no task span for h1")
	}
	if taskSpan["cache"] != "miss" {
		t.Errorf("first admission cache attr = %v, want miss", taskSpan["cache"])
	}

	// Remove and re-admit: the Phase-1 memo now hits.
	if status, _, _ := doJSON(t, c, http.MethodDelete, ts.URL+"/v1/tasks/h1", nil); status != http.StatusOK {
		t.Fatal("remove failed")
	}
	_, body, _ = doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit?trace=1", admitBody(t, trijob("h1")))
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, sp := range v.Trace {
		if sp.Name == "task" && sp.Attrs["cache"] == "hit" {
			hit = true
		}
	}
	if !hit {
		t.Error("re-admission trace shows no cache hit")
	}
}

// TestUntracedVerdictHasNoTraceField guards the byte-compatibility contract
// with `fedsched -o json`: without ?trace=1 the verdict must not mention a
// trace key at all.
func TestUntracedVerdictHasNoTraceField(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	status, body, _ := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/admit", admitBody(t, example1Task("e1")))
	if status != http.StatusOK {
		t.Fatalf("admit = %d", status)
	}
	if strings.Contains(string(body), `"trace"`) {
		t.Errorf("untraced verdict mentions trace:\n%s", body)
	}
}

// TestObserverRecords wires a Config.Observer and checks the per-operation
// records: op, status, task, latency, and well-defined cache deltas.
func TestObserverRecords(t *testing.T) {
	recs := make(chan AdmissionRecord, 16)
	svc, err := New(Config{M: 8, Observer: func(r AdmissionRecord) { recs <- r }})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if status, _ := svc.Admit(ctx, trijob("h1")); status != http.StatusOK {
		t.Fatal("admit failed")
	}
	r := <-recs
	if r.Op != "admit" || r.Task != "h1" || r.Status != http.StatusOK || !r.Schedulable {
		t.Errorf("record = %+v", r)
	}
	if r.TraceID == "" || r.LatencyNs <= 0 || r.Tasks != 1 {
		t.Errorf("record = %+v", r)
	}
	if r.CacheMisses != 1 || r.CacheHits != 0 {
		t.Errorf("cold admission cache deltas = %d hits, %d misses; want 0/1", r.CacheHits, r.CacheMisses)
	}
	// Second admission of a distinct name but identical DAG content: the
	// re-analysis of h1 plus the new h2 are both Phase-1 memo hits.
	if status, _ := svc.Admit(ctx, trijob("h2")); status != http.StatusOK {
		t.Fatal("admit h2 failed")
	}
	r = <-recs
	if r.CacheMisses != 0 || r.CacheHits != 2 {
		t.Errorf("warm admission cache deltas = %d hits, %d misses; want 2/0", r.CacheHits, r.CacheMisses)
	}
	if r.Tasks != 2 {
		t.Errorf("tasks after second admit = %d, want 2", r.Tasks)
	}
	// Remove is observed too.
	if status, _ := svc.Remove(ctx, "h2"); status != http.StatusOK {
		t.Fatal("remove failed")
	}
	r = <-recs
	if r.Op != "remove" || r.Task != "h2" || r.Tasks != 1 {
		t.Errorf("remove record = %+v", r)
	}
}

// TestObserverRejectRecorded checks the observer sees rejected admissions.
func TestObserverRejectRecorded(t *testing.T) {
	recs := make(chan AdmissionRecord, 16)
	svc, err := New(Config{M: 4, Observer: func(r AdmissionRecord) { recs <- r }})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if status, _ := svc.Admit(ctx, trijob("h1")); status != http.StatusOK {
		t.Fatal("admit failed")
	}
	<-recs
	status, _ := svc.Admit(ctx, trijob("h2")) // needs 3 of the 1 remaining
	if status != http.StatusConflict {
		t.Fatalf("second trijob admitted on M=4: %d", status)
	}
	r := <-recs
	if r.Op != "admit" || r.Schedulable || r.Status != http.StatusConflict {
		t.Errorf("reject record = %+v", r)
	}
}

// TestAdmitTraceRejectionIncludesTrace: a ?trace=1 rejection returns the
// decision trace alongside the reason, naming the failing phase.
func TestAdmitTraceRejectionIncludesTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 3})
	c := ts.Client()
	if status, _, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit", admitBody(t, trijob("h1"))); status != http.StatusOK {
		t.Fatal("admit h1 failed")
	}
	status, body, _ := doJSON(t, c, http.MethodPost, ts.URL+"/v1/admit?trace=1", admitBody(t, trijob("h2")))
	if status != http.StatusConflict {
		t.Fatalf("status = %d, want 409", status)
	}
	var v struct {
		Schedulable bool            `json:"schedulable"`
		Reason      string          `json:"reason"`
		Trace       json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Schedulable || v.Reason == "" || len(v.Trace) == 0 {
		t.Fatalf("rejection verdict = %+v", v)
	}
	var spans []struct {
		Name  string         `json:"name"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal(v.Trace, &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 || spans[0].Name != "fedcons" || spans[0].Attrs["phase"] != "high-density" {
		t.Errorf("trace root does not name the failing phase:\n%s", v.Trace)
	}
}

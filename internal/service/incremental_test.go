package service

import (
	"math/rand"
	"reflect"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/listsched"
	"fedsched/internal/partition"
	"fedsched/internal/task"
)

// genSystem draws a mixed-density system for differential testing.
func genSystem(t testing.TB, seed int64, tasks int, totalU float64) task.System {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	p := gen.DefaultParams(tasks, totalU)
	p.MinVerts, p.MaxVerts = 5, 20
	p.BetaMin, p.BetaMax = 0.2, 1.0
	sys, err := gen.System(r, p)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestIncrementalMatchesBatch pins the central equivalence: for any system,
// platform and option set, the cache-backed Schedule returns exactly what
// core.Schedule returns — identical allocations (numbering, templates) or
// identical failure diagnoses — on both first (cold) and second (warm) runs.
func TestIncrementalMatchesBatch(t *testing.T) {
	opts := []core.Options{
		{},
		{Minprocs: core.Analytic},
		{Priority: listsched.LongestPathFirst},
		{Partition: partition.Options{Heuristic: partition.BestFit, Test: partition.ExactEDF}},
	}
	for seed := int64(1); seed <= 20; seed++ {
		sys := genSystem(t, seed, 2+int(seed%6), 0.5+float64(seed%5))
		for _, opt := range opts {
			cache := NewAnalysisCache()
			for m := 1; m <= 10; m += 3 {
				want, wantErr := core.Schedule(sys, m, opt)
				for pass := 0; pass < 2; pass++ { // cold, then warm
					got, gotErr := cache.Schedule(sys, m, opt)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("seed %d m=%d pass %d: batch err %v, incremental err %v", seed, m, pass, wantErr, gotErr)
					}
					if wantErr != nil {
						if wantErr.Error() != gotErr.Error() {
							t.Fatalf("seed %d m=%d pass %d: diagnoses differ:\nbatch:       %v\nincremental: %v", seed, m, pass, wantErr, gotErr)
						}
						continue
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("seed %d m=%d pass %d: allocations differ\nbatch:       %+v\nincremental: %+v", seed, m, pass, want, got)
					}
					if err := core.Verify(sys, m, got); err != nil {
						t.Fatalf("seed %d m=%d: incremental allocation failed audit: %v", seed, m, err)
					}
				}
			}
			if hits, _ := cache.Stats(); sys.Summarize().HighDensity > 0 && hits == 0 {
				t.Errorf("seed %d: repeated analyses never hit the cache", seed)
			}
		}
	}
}

// TestCacheSharesAcrossIdenticalContent checks that two same-structure tasks
// with different names share one memo entry, while a relabeled isomorph gets
// its own chained entry (content equality guards the hash).
func TestCacheSharesAcrossIdenticalContent(t *testing.T) {
	mk := func(name string) *task.DAGTask {
		return task.MustNew(name, independent(4, 5), 10, 10) // δ = 2: high-density
	}
	cache := NewAnalysisCache()
	sys := task.System{mk("a"), mk("b")}
	if _, err := cache.Schedule(sys, 8, core.Options{}); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("want 1 hit, 1 miss for twin tasks; got %d hits, %d misses", hits, misses)
	}
	if cache.Len() != 1 {
		t.Fatalf("want a single shared entry, got %d", cache.Len())
	}
}

// independent returns k parallel jobs of WCET w.
func independent(k int, w task.Time) *dag.DAG {
	wcets := make([]task.Time, k)
	for i := range wcets {
		wcets[i] = w
	}
	return dag.Independent(wcets...)
}

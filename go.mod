module fedsched

go 1.22

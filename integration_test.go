package fedsched

// End-to-end randomized cross-validation: every analysis path against every
// auditor. For each random system and platform:
//
//   - every FEDCONS configuration that accepts must pass core.Verify;
//   - acceptances must satisfy the NECESSARY conditions;
//   - the accepted allocation must round-trip through JSON and re-verify;
//   - a traced simulation (sporadic jitter + early completion) must show
//     zero misses, pass the platform/precedence audits, and pass the
//     scheduling-rule audit matching the configured shared policy;
//   - the global-EDF comparator's trace must pass its own audit.
//
// This is the "everything agrees with everything" test; each individual
// property also has focused tests in its own package.

import (
	"math/rand"
	"testing"

	"fedsched/internal/baseline"
	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/fp"
	"fedsched/internal/gen"
	"fedsched/internal/partition"
	"fedsched/internal/sim"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

func TestEndToEndCrossValidation(t *testing.T) {
	r := rand.New(rand.NewSource(20150313)) // DATE 2015 started March 9–13
	trials := 40
	if testing.Short() {
		trials = 8
	}
	configs := []struct {
		name   string
		opt    core.Options
		shared sim.SharedPolicy
	}{
		{"paper", core.Options{}, sim.EDFPolicy},
		{"analytic", core.Options{Minprocs: core.Analytic}, sim.EDFPolicy},
		{"exact-edf", core.Options{Partition: partition.Options{Test: partition.ExactEDF}}, sim.EDFPolicy},
		{"dm-rta", core.Options{Partition: partition.Options{Test: partition.DMRta}}, sim.DMPolicy},
		{"worst-fit", core.Options{Partition: partition.Options{Heuristic: partition.WorstFit}}, sim.EDFPolicy},
	}

	accepted := 0
	for trial := 0; trial < trials; trial++ {
		p := gen.DefaultParams(1+r.Intn(6), 0.3+r.Float64()*4)
		p.MinVerts, p.MaxVerts = 3, 12
		p.Shape = gen.Shape(r.Intn(4))
		sys, err := gen.System(r, p)
		if err != nil {
			t.Fatal(err)
		}
		m := 1 + r.Intn(8)
		for _, cf := range configs {
			alloc, err := core.Schedule(sys, m, cf.opt)
			if err != nil {
				continue
			}
			accepted++
			if err := core.Verify(sys, m, alloc); err != nil {
				t.Fatalf("trial %d %s: %v", trial, cf.name, err)
			}
			if !baseline.Necessary(sys, m) {
				t.Fatalf("trial %d %s: acceptance fails necessary conditions", trial, cf.name)
			}
			// Serialization round trip.
			blob, err := core.EncodeAllocation(alloc)
			if err != nil {
				t.Fatal(err)
			}
			back, err := core.DecodeAllocation(blob, sys, m)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cf.name, err)
			}
			// Traced simulation with full audits.
			cfg := sim.Config{
				Horizon:  1200,
				Arrivals: sim.SporadicRandom,
				Exec:     sim.UniformExec,
				Shared:   cf.shared,
				Seed:     int64(trial),
			}
			rep, pt, err := sim.FederatedTraced(sys, back, cfg)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, cf.name, err)
			}
			if rep.TotalMissed() != 0 {
				t.Fatalf("trial %d %s: %d misses in accepted system", trial, cf.name, rep.TotalMissed())
			}
			auditPlatform(t, sys, back, pt, cf.shared)
		}
		// The global-EDF comparator audits cleanly regardless of verdicts.
		if trial%5 == 0 {
			_, tr, err := sim.GlobalEDFTraced(sys, m, sim.Config{
				Horizon: 600, Arrivals: sim.SporadicRandom, Exec: sim.UniformExec, Seed: int64(trial),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Check(); err != nil {
				t.Fatalf("trial %d global: %v", trial, err)
			}
			cons := precedences(sys)
			if err := tr.CheckPrecedence(cons); err != nil {
				t.Fatalf("trial %d global: %v", trial, err)
			}
			if err := tr.CheckGlobalEDF(m, cons); err != nil {
				t.Fatalf("trial %d global: %v", trial, err)
			}
		}
	}
	if accepted < 10 {
		t.Fatalf("test too vacuous: only %d acceptances", accepted)
	}
}

func auditPlatform(t *testing.T, sys task.System, alloc *core.Allocation, pt *sim.PlatformTrace, shared sim.SharedPolicy) {
	t.Helper()
	for gi, tr := range pt.High {
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
		h := alloc.High[gi]
		var cons []trace.Precedence
		for _, e := range sys[h.TaskIndex].G.Edges() {
			cons = append(cons, trace.Precedence{Task: h.TaskIndex, From: e[0], To: e[1]})
		}
		if err := tr.CheckPrecedence(cons); err != nil {
			t.Fatal(err)
		}
	}
	for k, tr := range pt.Shared {
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
		switch shared {
		case sim.DMPolicy:
			idxs := alloc.TasksOnShared(k)
			sps := make([]task.Sporadic, len(idxs))
			for j, i := range idxs {
				sps[j] = sys[i].AsSporadic()
			}
			rank := map[int]int{}
			for rnk, j := range fp.DMOrder(sps) {
				rank[idxs[j]] = rnk
			}
			err := tr.CheckPriority(func(a, b trace.JobInfo) bool {
				return rank[a.ID.Task] < rank[b.ID.Task]
			})
			if err != nil {
				t.Fatal(err)
			}
		default:
			if err := tr.CheckEDF(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func precedences(sys task.System) []trace.Precedence {
	var cons []trace.Precedence
	for i, tk := range sys {
		for _, e := range tk.G.Edges() {
			cons = append(cons, trace.Precedence{Task: i, From: e[0], To: e[1]})
		}
	}
	return cons
}

// TestExample1EndToEnd is the paper's own worked example taken through the
// entire stack in one assertion chain.
func TestExample1EndToEnd(t *testing.T) {
	tau1 := task.MustNew("tau1", dag.Example1(), dag.Example1D, dag.Example1T)
	sys := task.System{tau1}
	if tau1.Volume() != 9 || tau1.Len() != 6 || tau1.HighDensity() {
		t.Fatal("Example 1 quantities drifted")
	}
	alloc, err := core.Schedule(sys, 1, core.Options{})
	if err != nil {
		t.Fatalf("Example 1 must fit one processor: %v", err)
	}
	if err := core.Verify(sys, 1, alloc); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Federated(sys, alloc, sim.Config{Horizon: 10_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMissed() != 0 || rep.PerTask[0].MaxResponse != 9 {
		t.Fatalf("Example 1 runtime: %+v", rep.PerTask[0])
	}
}

// Command simulate runs the discrete-event run-time simulation of a task
// system: FEDCONS's federated runtime (template replay + partitioned EDF)
// and, optionally, vertex-level global EDF for comparison.
//
// Usage:
//
//	simulate [-horizon N] [-arrivals sporadic] [-exec uniform] [-global]
//	         [-engine fast|reference] [-gantt N] [-audit] [-trace out.json]
//	         [-alloc alloc.json] system.json
//
// -engine selects the simulator implementation: "fast" (the event-calendar
// engine, the default) or "reference" (the naive time-stepped oracle engine).
// Both produce identical reports; reference exists for differential checking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"fedsched/internal/core"
	"fedsched/internal/fp"
	"fedsched/internal/sim"
	"fedsched/internal/sim/reference"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		horizon  = fs.Int64("horizon", 100_000, "release horizon in ticks")
		arrivals = fs.String("arrivals", "periodic", "arrival model: periodic or sporadic")
		exec     = fs.String("exec", "wcet", "execution model: wcet or uniform")
		global   = fs.Bool("global", false, "also simulate vertex-level global EDF")
		gantt    = fs.Int64("gantt", 0, "if > 0, render an ASCII Gantt chart of the first N ticks")
		allocIn  = fs.String("alloc", "", "load a saved allocation (from fedsched -save) instead of re-running FEDCONS")
		audit    = fs.Bool("audit", false, "re-derive and check the platform, precedence and scheduling rules from the execution traces")
		traceOut = fs.String("trace", "", "write the full execution traces (JSON) to this file")
		shared   = fs.String("shared", "edf", "shared-processor scheduler: edf (paper) or dm")
		seed     = fs.Int64("seed", 1, "simulation seed")
		engine   = fs.String("engine", "fast", "simulator engine: fast (event calendar) or reference (time-stepped oracle)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file")
	}
	cfg := sim.Config{Horizon: *horizon, Seed: *seed}
	switch *arrivals {
	case "periodic":
		cfg.Arrivals = sim.Periodic
	case "sporadic":
		cfg.Arrivals = sim.SporadicRandom
	default:
		return fmt.Errorf("unknown -arrivals %q", *arrivals)
	}
	switch *exec {
	case "wcet":
		cfg.Exec = sim.FullWCET
	case "uniform":
		cfg.Exec = sim.UniformExec
	default:
		return fmt.Errorf("unknown -exec %q", *exec)
	}
	switch *shared {
	case "edf":
		cfg.Shared = sim.EDFPolicy
	case "dm":
		cfg.Shared = sim.DMPolicy
	default:
		return fmt.Errorf("unknown -shared %q", *shared)
	}
	// Both engines share types and random streams, so they are interchangeable
	// behind these two function values.
	fedTraced := sim.FederatedTraced
	globalEDF := sim.GlobalEDF
	switch *engine {
	case "fast":
	case "reference":
		fedTraced = reference.FederatedTraced
		globalEDF = reference.GlobalEDF
	default:
		return fmt.Errorf("unknown -engine %q (want fast or reference)", *engine)
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	sf, err := task.DecodeSystem(data)
	if err != nil {
		return err
	}

	var alloc *core.Allocation
	if *allocIn != "" {
		raw, err := os.ReadFile(*allocIn)
		if err != nil {
			return err
		}
		alloc, err = core.DecodeAllocation(raw, sf.Tasks, sf.Processors)
		if err != nil {
			return err
		}
	} else {
		var err error
		alloc, err = core.Schedule(sf.Tasks, sf.Processors, core.Options{})
		if err != nil {
			return fmt.Errorf("FEDCONS rejected the system, nothing to simulate: %w", err)
		}
	}
	rep, pt, err := fedTraced(sf.Tasks, alloc, cfg)
	if err != nil {
		return err
	}
	printReport(out, "federated runtime (FEDCONS allocation)", rep)
	if *audit {
		if err := auditTraces(out, sf.Tasks, alloc, pt, cfg.Shared); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		blob, err := json.MarshalIndent(pt, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*traceOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "execution traces written to %s\n", *traceOut)
	}
	if *gantt > 0 {
		scale := *gantt / 100
		if scale < 1 {
			scale = 1
		}
		for gi, tr := range pt.High {
			fmt.Fprintf(out, "-- dedicated group for %s --\n", sf.Tasks[alloc.High[gi].TaskIndex].Name)
			fmt.Fprint(out, tr.Gantt(0, *gantt, scale))
		}
		for k, tr := range pt.Shared {
			fmt.Fprintf(out, "-- shared processor %d --\n", alloc.SharedProcs[k])
			fmt.Fprint(out, tr.Gantt(0, *gantt, scale))
		}
	}

	if *global {
		grep, err := globalEDF(sf.Tasks, sf.Processors, cfg)
		if err != nil {
			return err
		}
		printReport(out, "global EDF (vertex-level, migrating)", grep)
	}
	return nil
}

func printReport(out io.Writer, title string, rep *sim.Report) {
	fmt.Fprintf(out, "== %s ==\n", title)
	fmt.Fprintf(out, "dag-jobs: %d, deadline misses: %d\n", rep.TotalReleased(), rep.TotalMissed())
	fmt.Fprintf(out, "%-12s %8s %8s %10s %12s %12s\n", "task", "released", "missed", "maxResp", "meanResp", "maxLateness")
	for _, st := range rep.PerTask {
		fmt.Fprintf(out, "%-12s %8d %8d %10d %12.1f %12d\n",
			st.Name, st.Released, st.Missed, st.MaxResponse, st.MeanResponse(), st.MaxLateness)
	}
	fmt.Fprintln(out)
}

// auditTraces re-derives every promised property from the raw execution
// slices: platform rules and DAG precedence per dedicated group, platform
// rules plus the EDF or deadline-monotonic priority rule per shared
// processor. Any violation aborts with an error — a clean pass is printed.
func auditTraces(out io.Writer, sys task.System, alloc *core.Allocation, pt *sim.PlatformTrace, shared sim.SharedPolicy) error {
	for gi, tr := range pt.High {
		if err := tr.Check(); err != nil {
			return fmt.Errorf("audit: dedicated group %d: %w", gi, err)
		}
		h := alloc.High[gi]
		var cons []trace.Precedence
		for _, e := range sys[h.TaskIndex].G.Edges() {
			cons = append(cons, trace.Precedence{Task: h.TaskIndex, From: e[0], To: e[1]})
		}
		if err := tr.CheckPrecedence(cons); err != nil {
			return fmt.Errorf("audit: dedicated group %d: %w", gi, err)
		}
	}
	for k, tr := range pt.Shared {
		if err := tr.Check(); err != nil {
			return fmt.Errorf("audit: shared processor %d: %w", k, err)
		}
		switch shared {
		case sim.DMPolicy:
			idxs := alloc.TasksOnShared(k)
			sps := make([]task.Sporadic, len(idxs))
			for j, i := range idxs {
				sps[j] = sys[i].AsSporadic()
			}
			rank := map[int]int{}
			for r, j := range fp.DMOrder(sps) {
				rank[idxs[j]] = r
			}
			err := tr.CheckPriority(func(a, b trace.JobInfo) bool {
				return rank[a.ID.Task] < rank[b.ID.Task]
			})
			if err != nil {
				return fmt.Errorf("audit: shared processor %d: %w", k, err)
			}
		default:
			if err := tr.CheckEDF(); err != nil {
				return fmt.Errorf("audit: shared processor %d: %w", k, err)
			}
		}
	}
	fmt.Fprintf(out, "trace audit: %d dedicated group(s) and %d shared processor(s) pass platform, precedence and priority-rule checks\n",
		len(pt.High), len(pt.Shared))
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/sim"
	"fedsched/internal/task"
	"fedsched/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// writeSystem encodes a system file into a temp path for the CLI to read.
func writeSystem(t *testing.T, sf *task.SystemFile) string {
	t.Helper()
	data, err := task.EncodeSystem(sf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sys.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// example1System is the paper's Example 1 DAG task (low-density: δ = 9/16)
// on a single processor — exercises the partitioned-EDF side of the runtime.
func example1System() *task.SystemFile {
	return &task.SystemFile{
		Processors: 1,
		Tasks:      task.System{task.MustNew("tau1", dag.Example1(), dag.Example1D, dag.Example1T)},
	}
}

// example2System is the paper's Example 2 family at n = 3: three singleton
// tasks with C = 1, D = 1, T = 3, density 1 each — exercises template replay
// on dedicated processors.
func example2System() *task.SystemFile {
	n := 3
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		sys = append(sys, task.MustNew(fmt.Sprintf("tau%d", i+1), dag.Singleton(1), 1, task.Time(n)))
	}
	return &task.SystemFile{Processors: n, Tasks: sys}
}

func TestSimulateGoldenExample1(t *testing.T) {
	path := writeSystem(t, example1System())
	var buf bytes.Buffer
	if err := run([]string{"-horizon", "200", "-seed", "1", path}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "simulate_example1", buf.String())
}

func TestSimulateGoldenExample2(t *testing.T) {
	path := writeSystem(t, example2System())
	var buf bytes.Buffer
	if err := run([]string{"-horizon", "200", "-seed", "1", "-gantt", "20", path}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "simulate_example2", buf.String())
}

// TestSimulateEngineFlag pins the two engines to the same golden output:
// -engine=reference must reproduce the fast engine's report byte for byte,
// including under sporadic arrivals and random execution times.
func TestSimulateEngineFlag(t *testing.T) {
	for _, sf := range []*task.SystemFile{example1System(), example2System()} {
		path := writeSystem(t, sf)
		for _, extra := range [][]string{
			nil,
			{"-arrivals", "sporadic", "-exec", "uniform", "-global"},
		} {
			base := append([]string{"-horizon", "300", "-seed", "42"}, extra...)
			var fast, ref bytes.Buffer
			if err := run(append(append([]string{}, base...), path), &fast); err != nil {
				t.Fatal(err)
			}
			if err := run(append(append([]string{"-engine", "reference"}, base...), path), &ref); err != nil {
				t.Fatal(err)
			}
			if fast.String() != ref.String() {
				t.Errorf("engines disagree for %v:\n--- fast ---\n%s--- reference ---\n%s", extra, fast.String(), ref.String())
			}
		}
	}
	if err := run([]string{"-engine", "weird", writeSystem(t, example1System())}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown engine")
	}
}

func systemPath(t *testing.T) string {
	t.Helper()
	data, err := task.EncodeSystem(&task.SystemFile{
		Processors: 4,
		Tasks: task.System{
			task.MustNew("high", dag.Independent(5, 5, 5, 5), 10, 10),
			task.MustNew("low", dag.Singleton(2), 8, 16),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sys.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimulateFederated(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-horizon", "1000", systemPath(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "federated runtime") {
		t.Errorf("missing federated section:\n%s", out)
	}
	if !strings.Contains(out, "deadline misses: 0") {
		t.Errorf("accepted system must report zero misses:\n%s", out)
	}
}

func TestSimulateGlobalAndGantt(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-horizon", "500", "-global", "-gantt", "40",
		"-arrivals", "sporadic", "-exec", "uniform", systemPath(t)}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"global EDF", "dedicated group", "shared processor", "P0 "} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	if err := run([]string{"-arrivals", "weird", systemPath(t)}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown arrival model")
	}
	if err := run([]string{"-exec", "weird", systemPath(t)}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown exec model")
	}
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("accepted zero arguments")
	}
	// Unschedulable system: nothing to simulate.
	data, err := task.EncodeSystem(&task.SystemFile{
		Processors: 1,
		Tasks:      task.System{task.MustNew("big", dag.Independent(5, 5, 5, 5), 10, 10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unschedulable system")
	}
}

func TestSimulateWithSavedAllocationAndDM(t *testing.T) {
	path := systemPath(t)
	// Produce the allocation file via the core API (what fedsched -save does).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := task.DecodeSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := core.Schedule(sf.Tasks, sf.Processors, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := core.EncodeAllocation(alloc)
	if err != nil {
		t.Fatal(err)
	}
	allocPath := filepath.Join(t.TempDir(), "alloc.json")
	if err := os.WriteFile(allocPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-alloc", allocPath, "-horizon", "500", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deadline misses: 0") {
		t.Errorf("output: %s", buf.String())
	}
	// DM shared policy flag.
	if err := run([]string{"-shared", "dm", "-horizon", "500", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-shared", "x", path}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown shared policy")
	}
	// Corrupt allocation file must be rejected.
	if err := os.WriteFile(allocPath, []byte(`{"M":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-alloc", allocPath, path}, &bytes.Buffer{}); err == nil {
		t.Error("accepted corrupt allocation")
	}
}

func TestAuditAndTraceExport(t *testing.T) {
	path := systemPath(t)
	tracePath := filepath.Join(t.TempDir(), "traces.json")
	var buf bytes.Buffer
	err := run([]string{"-horizon", "500", "-arrivals", "sporadic", "-exec", "uniform",
		"-audit", "-trace", tracePath, path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace audit:") {
		t.Errorf("audit summary missing:\n%s", buf.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var pt sim.PlatformTrace
	if err := json.Unmarshal(data, &pt); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if len(pt.High)+len(pt.Shared) == 0 {
		t.Fatal("trace file empty")
	}
	// The exported traces re-audit cleanly.
	for _, tr := range append(append([]*trace.Trace(nil), pt.High...), pt.Shared...) {
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
	}
	// DM audit path.
	if err := run([]string{"-horizon", "400", "-shared", "dm", "-audit", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fedsched/internal/gen"
	"fedsched/internal/task"
)

// TestTypedFlagValidation pins the typed flag surface: -policy=typed is
// accepted (with and without budgets), the budget flags demand the typed
// policy and exclude each other, malformed -m-types specs are refused before
// the input file is read, and -simulate accepts typed allocations (they carry
// template schedules, unlike the split shapes).
func TestTypedFlagValidation(t *testing.T) {
	path := schedulableFile(t)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"typed-default", []string{"-policy", "typed"}, ""},
		{"typed-single-type", []string{"-policy", "typed", "-m-types", "a:4"}, ""},
		{"typed-m-a", []string{"-policy", "typed", "-m-a", "4"}, ""},
		{"typed-simulate", []string{"-policy", "typed", "-simulate", "100"}, ""},
		{"mtypes-without-typed", []string{"-m-types", "a:8"}, "require -policy=typed"},
		{"mtypes-with-semi", []string{"-policy", "semi", "-m-types", "a:8"}, "require -policy=typed"},
		{"both-spellings", []string{"-policy", "typed", "-m-types", "a:8", "-m-a", "8"}, "mutually exclusive"},
		{"bad-spec-no-colon", []string{"-policy", "typed", "-m-types", "a8"}, "want <type>:<count>"},
		{"bad-spec-name", []string{"-policy", "typed", "-m-types", "A:8"}, "type must be a letter"},
		{"bad-spec-dup", []string{"-policy", "typed", "-m-types", "a:4,a:4"}, "twice"},
		{"bad-spec-negative", []string{"-policy", "typed", "-m-types", "a:-1"}, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(append(append([]string{}, tc.args...), path), &bytes.Buffer{})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("run(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestTypedSingleTypeDifferential is the typed model's compatibility pin: on
// a single-type platform (every processor type a — the model the paper
// analyzes) with untyped workloads, -policy=typed must be byte-identical to
// strict -policy=fedcons. Across 20 generated systems spanning schedulable
// and unschedulable territory, every partition heuristic, both worker-pool
// widths and three spellings of the single-type platform (no budgets,
// -m-types a:8, -m-a 8), it compares the verdict/allocation output, the
// -trace JSONL stream, the -explain text and the error against the strict
// run, and asserts the degenerate verdict leaks neither "policy" nor
// "mtypes" — which is what keeps WAL/snapshot replays and the daemon's
// GET /v1/allocation contract unchanged for existing deployments.
func TestTypedSingleTypeDifferential(t *testing.T) {
	const m, n, seeds = 8, 8, 20
	dir := t.TempDir()
	heuristics := []string{"first-fit", "best-fit", "worst-fit"}
	pars := []string{"1", "4"}
	spellings := [][]string{
		{"-policy", "typed"},
		{"-policy", "typed", "-m-types", "a:8"},
		{"-policy", "typed", "-m-a", "8"},
	}
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		normU := 0.30 + 0.03*float64(seed) // 0.30 … 0.87: mixed verdicts
		p := gen.DefaultParams(n, normU*float64(m))
		sys, err := gen.System(r, p)
		if err != nil {
			t.Fatal(err)
		}
		path := writeSystem(t, &task.SystemFile{Processors: m, Tasks: sys})
		for _, h := range heuristics {
			for _, par := range pars {
				for _, mode := range []struct {
					name string
					args []string
				}{
					{"json+trace", []string{"-o", "json", "-trace", "@TRACE@"}},
					{"explain", []string{"-explain"}},
				} {
					base := append([]string{"-partition", h, "-par", par}, mode.args...)
					wantOut, wantTrace, wantErr := runCapture(t, dir, base, path, "fedcons")
					for si, sp := range spellings {
						args := append(append([]string{}, base...), sp...)
						gotOut, gotTrace, gotErr := runCapture(t, dir, args, path, "")
						label := fmt.Sprintf("seed %d %s par %s %s spelling %d", seed, h, par, mode.name, si)
						if !errors.Is(gotErr, wantErr) && !sameErrString(gotErr, wantErr) {
							t.Fatalf("%s: err %v vs %v", label, gotErr, wantErr)
						}
						if gotOut != wantOut {
							t.Fatalf("%s: output diverges:\n--- fedcons ---\n%s\n--- typed ---\n%s", label, wantOut, gotOut)
						}
						if gotTrace != wantTrace {
							t.Fatalf("%s: trace diverges", label)
						}
						if mode.name == "json+trace" {
							for _, leak := range []string{`"policy"`, `"mtypes"`, `"servers"`} {
								if strings.Contains(gotOut, leak) {
									t.Fatalf("%s: degenerate typed verdict leaks %s:\n%s", label, leak, gotOut)
								}
							}
						}
					}
				}
			}
		}
	}
}

package main

import (
	"fmt"
	"io"
	"os"

	"fedsched/internal/obs"
)

// writeTrace exports the decision trace as JSONL (timings off, so the bytes
// are deterministic for a fixed input and option set). path "-" writes to the
// CLI's own output stream.
func writeTrace(out io.Writer, rec *obs.Recorder, path string) error {
	if path == "-" {
		return rec.WriteJSONL(out, obs.ExportOptions{})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f, obs.ExportOptions{}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeExplanation renders the recorded FEDCONS decision trace as a
// human-readable narrative: per-task density classification, every MINPROCS
// candidate with its makespan against the Lemma-1 bound, and every Phase-2
// placement with the DBF* inequalities of the processors probed. On a
// rejection the narrative names the phase, the task, and the decisive
// inequality.
func writeExplanation(out io.Writer, rec *obs.Recorder) {
	roots := rec.Roots()
	if len(roots) == 0 {
		fmt.Fprintln(out, "explanation: no trace recorded")
		return
	}
	root := roots[0]
	fmt.Fprintln(out, "\nexplanation:")
	for _, phase := range root.Children() {
		switch phase.Name() {
		case "phase1":
			explainPhase1(out, phase)
		case "phase2":
			explainPhase2(out, phase)
		}
	}
	if v, ok := root.Lookup("schedulable"); ok && !v.Bool() {
		if p, ok := root.Lookup("phase"); ok {
			fmt.Fprintf(out, "  verdict: UNSCHEDULABLE — FEDCONS gave up in the %s phase\n", p.Str())
		}
	} else {
		fmt.Fprintln(out, "  verdict: SCHEDULABLE — both phases succeeded")
	}
}

func explainPhase1(out io.Writer, p1 *obs.Span) {
	fmt.Fprintln(out, "  phase 1 — MINPROCS sizing of high-density tasks:")
	for _, tsp := range p1.Children() {
		name := attrStr(tsp, "task")
		vol, l := attrInt(tsp, "vol"), attrInt(tsp, "len")
		window := attrInt(tsp, "window")
		density := attrFloat(tsp, "density")
		if !attrBool(tsp, "high") {
			fmt.Fprintf(out, "    %-12s δ=%.3f < 1 → low-density, deferred to phase 2\n", name, density)
			continue
		}
		fmt.Fprintf(out, "    %-12s δ=%.3f ≥ 1 → high-density (vol=%d, len=%d, window=%d)\n",
			name, density, vol, l, window)
		if cache := attrStr(tsp, "cache"); cache == "hit" {
			fmt.Fprintf(out, "      μ*=%d replayed from the analysis cache\n", attrInt(tsp, "mu"))
			continue
		}
		if reason := attrStr(tsp, "reason"); reason == "critical-path-exceeds-window" {
			fmt.Fprintf(out, "      REJECTED: len=%d > window=%d — no processor count can meet the deadline\n", l, window)
			continue
		}
		if start, ok := tsp.Lookup("scan_start"); ok {
			fmt.Fprintf(out, "      scan μ = %d..%d (⌈δ⌉=%d, width=%d, %d processors remaining)\n",
				start.Int64(), attrInt(tsp, "limit"), start.Int64(), attrInt(tsp, "width"), attrInt(tsp, "remaining"))
		}
		for _, mu := range tsp.Children() {
			if mu.Name() != "mu" {
				continue
			}
			m, makespan := attrInt(mu, "mu"), attrInt(mu, "makespan")
			bound := attrFloat(mu, "lemma1_bound")
			if attrBool(mu, "ok") {
				fmt.Fprintf(out, "      μ=%d: LS makespan %d ≤ window %d (Lemma-1 bound %.3f) → ACCEPT, dedicate %d processors\n",
					m, makespan, window, bound, m)
			} else {
				fmt.Fprintf(out, "      μ=%d: LS makespan %d > window %d (Lemma-1 bound %.3f) → too slow\n",
					m, makespan, window, bound)
			}
		}
		if attrBool(tsp, "failed") {
			fmt.Fprintf(out, "      REJECTED: no μ up to the %d remaining processors meets window %d\n",
				attrInt(tsp, "remaining"), window)
		}
	}
}

func explainPhase2(out io.Writer, p2 *obs.Span) {
	fmt.Fprintf(out, "  phase 2 — %s partition of low-density tasks onto %d shared processors (%s test):\n",
		attrStr(p2, "heuristic"), attrInt(p2, "procs"), attrStr(p2, "test"))
	if attrInt(p2, "low") == 0 {
		fmt.Fprintln(out, "    no low-density tasks — nothing to place")
		return
	}
	for _, place := range p2.Children() {
		if place.Name() != "place" {
			continue
		}
		name := attrStr(place, "task")
		c, d, t := attrInt(place, "C"), attrInt(place, "D"), attrInt(place, "T")
		if !attrBool(place, "failed") {
			fmt.Fprintf(out, "    place %-12s (C=%d D=%d T=%d) → proc %d\n", name, c, d, t, attrInt(place, "proc"))
			continue
		}
		fmt.Fprintf(out, "    place %-12s (C=%d D=%d T=%d):\n", name, c, d, t)
		for _, fit := range place.Children() {
			if fit.Name() != "fit" {
				continue
			}
			fmt.Fprintf(out, "      proc %d: %s → does not fit\n", attrInt(fit, "proc"), fitInequality(fit))
		}
		fmt.Fprintln(out, "      REJECTED: fits no shared processor")
	}
}

// fitInequality renders the decisive inequality of one failed fit probe.
func fitInequality(fit *obs.Span) string {
	if _, ok := fit.Lookup("util"); !ok {
		// edf-exact / dm-rta probes record only the boolean outcome.
		return fmt.Sprintf("%s test rejects", attrStr(fit, "test"))
	}
	if !attrBool(fit, "util_ok") {
		return fmt.Sprintf("Σu = %.4g > 1", attrFloat(fit, "util"))
	}
	if !attrBool(fit, "demand_ok") {
		return fmt.Sprintf("C + ΣDBF*(D=%d) = %.4g > %d", attrInt(fit, "capacity"), attrFloat(fit, "demand"), attrInt(fit, "capacity"))
	}
	return fmt.Sprintf("Σu = %.4g ≤ 1, C + ΣDBF* = %.4g ≤ %d", attrFloat(fit, "util"), attrFloat(fit, "demand"), attrInt(fit, "capacity"))
}

// Attr accessors with zero-value defaults for absent keys.
func attrInt(s *obs.Span, key string) int64 {
	if v, ok := s.Lookup(key); ok {
		return v.Int64()
	}
	return 0
}

func attrFloat(s *obs.Span, key string) float64 {
	if v, ok := s.Lookup(key); ok {
		return v.Float64()
	}
	return 0
}

func attrStr(s *obs.Span, key string) string {
	if v, ok := s.Lookup(key); ok {
		return v.Str()
	}
	return ""
}

func attrBool(s *obs.Span, key string) bool {
	if v, ok := s.Lookup(key); ok {
		return v.Bool()
	}
	return false
}

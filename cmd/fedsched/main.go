// Command fedsched runs Algorithm FEDCONS on a task-system JSON file and
// prints the resulting processor allocation, or the failure diagnosis.
//
// Usage:
//
//	fedsched [flags] system.json
//
// The input format is produced by cmd/taskgen:
//
//	{"processors": 8, "tasks": [{"name": "...", "deadline": 16,
//	 "period": 20, "dag": {"vertices": [{"wcet": 2}, ...],
//	 "edges": [[0,1], ...]}}, ...]}
//
// Flags select the MINPROCS variant, the LS priority, the partitioning
// heuristic and admission test, and optional verification and simulation of
// the produced allocation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"fedsched/internal/core"
	"fedsched/internal/obs"
	"fedsched/internal/service"
	"fedsched/internal/sim"
	"fedsched/internal/task"
)

// errUnschedulable distinguishes an analysis verdict (exit code 2) from an
// operational failure (exit code 1).
var errUnschedulable = errors.New("unschedulable")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case errors.Is(err, errUnschedulable):
		os.Exit(2)
	case err != nil:
		fmt.Fprintln(os.Stderr, "fedsched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fedsched", flag.ContinueOnError)
	var (
		minprocs  = fs.String("minprocs", "ls-scan", "MINPROCS variant: ls-scan (paper) or analytic")
		prio      = fs.String("priority", "insertion", "LS list order: insertion, longest-path, largest-wcet")
		heuristic = fs.String("partition", "first-fit", "partition heuristic: first-fit (paper), best-fit, worst-fit")
		admission = fs.String("admission", "dbf-approx", "partition admission test: dbf-approx (paper), edf-exact or dm-rta")
		verify    = fs.Bool("verify", true, "independently audit the allocation before printing")
		output    = fs.String("o", "text", "output format: text or json (the service.Verdict encoding, byte-identical to the fedschedd daemon's answer)")
		simulate  = fs.Int64("simulate", 0, "if > 0, simulate the allocation over this release horizon")
		save      = fs.String("save", "", "write the allocation (with template schedules) to this JSON file")
		seed      = fs.Int64("seed", 1, "simulation seed")
		explain   = fs.Bool("explain", false, "print a step-by-step explanation of the FEDCONS decision (which phase, which task, which inequality)")
		traceOut  = fs.String("trace", "", "write the decision trace as JSONL to this file ('-' = stdout); byte-deterministic for fixed input and options")
		par       = fs.Int("par", runtime.GOMAXPROCS(0), "Phase-1 analysis worker pool size; output (including -trace and -explain) is byte-identical for every value")
		policy    = fs.String("policy", "fedcons", "admission policy: fedcons (paper), semi (semi-federated fractional grants), reservation (reservation servers) or typed (per-vertex processor types)")
		mtypesF   = fs.String("m-types", "", "typed platform: per-type processor budgets, e.g. a:4,b:2 (requires -policy=typed; must sum to the system's processor count)")
		mA        = fs.Int("m-a", -1, "shorthand for the type-a budget of -m-types (combine with -m-b)")
		mB        = fs.Int("m-b", -1, "shorthand for the type-b budget of -m-types (combine with -m-a)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file, got %d args", fs.NArg())
	}
	if *par < 1 {
		return fmt.Errorf("-par must be ≥ 1, got %d", *par)
	}

	if *output != "text" && *output != "json" {
		return fmt.Errorf("unknown -o %q (want text or json)", *output)
	}
	if *output == "json" && *simulate > 0 {
		return fmt.Errorf("-o json does not support -simulate")
	}
	if *output == "json" && *explain {
		return fmt.Errorf("-o json does not support -explain (use the daemon's ?trace=1 for machine-readable traces)")
	}
	opt, err := buildOptions(*minprocs, *prio, *heuristic, *admission)
	if err != nil {
		return err
	}
	opt.Par = *par
	if opt.Policy, err = service.ParsePolicy(*policy); err != nil {
		return err
	}
	mtypes, err := service.ParseMTypes(*mtypesF)
	if err != nil {
		return err
	}
	if *mA >= 0 || *mB >= 0 {
		if mtypes != nil {
			return fmt.Errorf("-m-a/-m-b and -m-types are mutually exclusive")
		}
		a, b := *mA, *mB
		if a < 0 {
			a = 0
		}
		if b < 0 {
			b = 0
		}
		mtypes = []int{a, b}
	}
	if mtypes != nil && opt.Policy != core.PolicyTyped {
		return fmt.Errorf("per-type budgets (-m-types/-m-a/-m-b) require -policy=typed")
	}
	opt.MTypes = mtypes
	if opt.Policy != "" && opt.Policy != core.PolicyTyped && *simulate > 0 {
		// The simulator replays template schedules; split-shape allocations
		// have none (servers are dispatched work-conservingly at run time).
		// Typed allocations carry templates, so they simulate like strict ones.
		return fmt.Errorf("-simulate supports only -policy=fedcons or -policy=typed")
	}
	var rec *obs.Recorder
	if *explain || *traceOut != "" {
		rec = obs.New(obs.DefaultLimits)
		opt.Trace = rec
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	sf, err := task.DecodeSystem(data)
	if err != nil {
		return err
	}

	if *output == "text" {
		fmt.Fprintf(out, "system: %d tasks on m=%d processors (U_sum=%.3f, Σδ=%.3f)\n",
			len(sf.Tasks), sf.Processors, sf.Tasks.USum(), sf.Tasks.DensitySum())
	}

	alloc, schedErr := core.Schedule(sf.Tasks, sf.Processors, opt)
	if schedErr == nil && *verify {
		if err := core.Verify(sf.Tasks, sf.Processors, alloc); err != nil {
			return fmt.Errorf("allocation failed verification: %w", err)
		}
	}
	if *traceOut != "" {
		// Timings off: the trace is a pure function of (input, options), so
		// two runs produce byte-identical files — diffable evidence.
		if err := writeTrace(out, rec, *traceOut); err != nil {
			return err
		}
	}
	if *output == "json" {
		// The exact bytes fedschedd serves from GET /v1/allocation for the
		// same system: one shared encoder, no drift between CLI and daemon.
		body, err := service.NewVerdict(sf.Tasks, sf.Processors, alloc, schedErr).Encode()
		if err != nil {
			return err
		}
		if _, err := out.Write(body); err != nil {
			return err
		}
		if schedErr != nil {
			return errUnschedulable
		}
		return saveAllocation(out, alloc, *save, true)
	}
	if schedErr != nil {
		fmt.Fprintln(out, "verdict: UNSCHEDULABLE")
		fmt.Fprintln(out, "reason: ", schedErr)
		if *explain {
			writeExplanation(out, rec)
		}
		return errUnschedulable
	}
	printAllocation(out, sf.Tasks, alloc)
	if *explain {
		writeExplanation(out, rec)
	}

	if err := saveAllocation(out, alloc, *save, false); err != nil {
		return err
	}

	if *simulate > 0 {
		rep, err := sim.Federated(sf.Tasks, alloc, sim.Config{
			Horizon:  *simulate,
			Arrivals: sim.SporadicRandom,
			Exec:     sim.UniformExec,
			Seed:     *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nsimulation over horizon %d: %d dag-jobs, %d deadline misses\n",
			*simulate, rep.TotalReleased(), rep.TotalMissed())
		for _, st := range rep.PerTask {
			fmt.Fprintf(out, "  %-12s released=%-6d missed=%-4d maxResp=%-6d meanResp=%.1f\n",
				st.Name, st.Released, st.Missed, st.MaxResponse, st.MeanResponse())
		}
	}
	return nil
}

// buildOptions delegates to the parser shared with cmd/fedschedd, so the
// batch CLI and the daemon accept exactly the same variant vocabulary.
func buildOptions(minprocs, prio, heuristic, admission string) (core.Options, error) {
	return service.ParseOptions(minprocs, prio, heuristic, admission)
}

// saveAllocation writes the allocation artifact when -save is set; quiet
// suppresses the confirmation line so -o json emits pure JSON.
func saveAllocation(out io.Writer, alloc *core.Allocation, path string, quiet bool) error {
	if path == "" {
		return nil
	}
	data, err := core.EncodeAllocation(alloc)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(out, "allocation written to %s\n", path)
	}
	return nil
}

func printAllocation(out io.Writer, sys task.System, alloc *core.Allocation) {
	fmt.Fprintln(out, "verdict: SCHEDULABLE")
	switch {
	case alloc.Policy == core.PolicyTyped:
		fmt.Fprintf(out, "policy: typed (platform %s)\n", core.FormatMTypes(alloc.MTypes))
	case alloc.Policy != "":
		fmt.Fprintf(out, "policy: %s (%d reservation servers)\n", alloc.Policy, len(alloc.Servers))
	}
	ded, shared := alloc.ProcessorsUsed()
	fmt.Fprintf(out, "processors: %d dedicated (federated), %d shared (partitioned EDF)\n", ded, shared)
	for _, h := range alloc.High {
		tk := sys[h.TaskIndex]
		if h.Template == nil { // split-shape grant: no template schedule
			fmt.Fprintf(out, "  high-density %-12s δ=%.3f → procs %v + fractional server\n",
				tk.Name, tk.Density(), h.Procs)
			continue
		}
		fmt.Fprintf(out, "  high-density %-12s δ=%.3f → procs %v, template makespan %d ≤ D=%d\n",
			tk.Name, tk.Density(), h.Procs, h.Template.Makespan, tk.D)
	}
	srvNames := core.ServerNames(sys, alloc)
	for j, sv := range alloc.Servers {
		owner := sys[sv.TaskIndex]
		w := owner.D
		if owner.T < w {
			w = owner.T
		}
		fmt.Fprintf(out, "  server %-14s budget %d per window %d (owner %s)\n", srvNames[j], sv.Budget, w, owner.Name)
	}
	for k, p := range alloc.SharedProcs {
		fmt.Fprintf(out, "  shared proc %d: %d tasks:", p, len(alloc.Low.Assignment[k]))
		for _, pos := range alloc.Low.Assignment[k] {
			if pos < len(alloc.Servers) {
				fmt.Fprintf(out, " %s(E=%d)", srvNames[pos], alloc.Servers[pos].Budget)
				continue
			}
			i := alloc.LowIndices[pos-len(alloc.Servers)]
			fmt.Fprintf(out, " %s(δ=%.2f)", sys[i].Name, sys[i].Density())
		}
		fmt.Fprintln(out)
	}
}

// Command fedsched runs Algorithm FEDCONS on a task-system JSON file and
// prints the resulting processor allocation, or the failure diagnosis.
//
// Usage:
//
//	fedsched [flags] system.json
//
// The input format is produced by cmd/taskgen:
//
//	{"processors": 8, "tasks": [{"name": "...", "deadline": 16,
//	 "period": 20, "dag": {"vertices": [{"wcet": 2}, ...],
//	 "edges": [[0,1], ...]}}, ...]}
//
// Flags select the MINPROCS variant, the LS priority, the partitioning
// heuristic and admission test, and optional verification and simulation of
// the produced allocation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"fedsched/internal/core"
	"fedsched/internal/listsched"
	"fedsched/internal/partition"
	"fedsched/internal/sim"
	"fedsched/internal/task"
)

// errUnschedulable distinguishes an analysis verdict (exit code 2) from an
// operational failure (exit code 1).
var errUnschedulable = errors.New("unschedulable")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case errors.Is(err, errUnschedulable):
		os.Exit(2)
	case err != nil:
		fmt.Fprintln(os.Stderr, "fedsched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fedsched", flag.ContinueOnError)
	var (
		minprocs  = fs.String("minprocs", "ls-scan", "MINPROCS variant: ls-scan (paper) or analytic")
		prio      = fs.String("priority", "insertion", "LS list order: insertion, longest-path, largest-wcet")
		heuristic = fs.String("partition", "first-fit", "partition heuristic: first-fit (paper), best-fit, worst-fit")
		admission = fs.String("admission", "dbf-approx", "partition admission test: dbf-approx (paper), edf-exact or dm-rta")
		verify    = fs.Bool("verify", true, "independently audit the allocation before printing")
		simulate  = fs.Int64("simulate", 0, "if > 0, simulate the allocation over this release horizon")
		save      = fs.String("save", "", "write the allocation (with template schedules) to this JSON file")
		seed      = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file, got %d args", fs.NArg())
	}

	opt, err := buildOptions(*minprocs, *prio, *heuristic, *admission)
	if err != nil {
		return err
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	sf, err := task.DecodeSystem(data)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "system: %d tasks on m=%d processors (U_sum=%.3f, Σδ=%.3f)\n",
		len(sf.Tasks), sf.Processors, sf.Tasks.USum(), sf.Tasks.DensitySum())

	alloc, err := core.Schedule(sf.Tasks, sf.Processors, opt)
	if err != nil {
		fmt.Fprintln(out, "verdict: UNSCHEDULABLE")
		fmt.Fprintln(out, "reason: ", err)
		return errUnschedulable
	}
	if *verify {
		if err := core.Verify(sf.Tasks, sf.Processors, alloc); err != nil {
			return fmt.Errorf("allocation failed verification: %w", err)
		}
	}
	printAllocation(out, sf.Tasks, alloc)

	if *save != "" {
		data, err := core.EncodeAllocation(alloc)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "allocation written to %s\n", *save)
	}

	if *simulate > 0 {
		rep, err := sim.Federated(sf.Tasks, alloc, sim.Config{
			Horizon:  *simulate,
			Arrivals: sim.SporadicRandom,
			Exec:     sim.UniformExec,
			Seed:     *seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nsimulation over horizon %d: %d dag-jobs, %d deadline misses\n",
			*simulate, rep.TotalReleased(), rep.TotalMissed())
		for _, st := range rep.PerTask {
			fmt.Fprintf(out, "  %-12s released=%-6d missed=%-4d maxResp=%-6d meanResp=%.1f\n",
				st.Name, st.Released, st.Missed, st.MaxResponse, st.MeanResponse())
		}
	}
	return nil
}

func buildOptions(minprocs, prio, heuristic, admission string) (core.Options, error) {
	var opt core.Options
	switch minprocs {
	case "ls-scan":
		opt.Minprocs = core.LSScan
	case "analytic":
		opt.Minprocs = core.Analytic
	default:
		return opt, fmt.Errorf("unknown -minprocs %q", minprocs)
	}
	switch prio {
	case "insertion":
		opt.Priority = nil
	case "longest-path":
		opt.Priority = listsched.LongestPathFirst
	case "largest-wcet":
		opt.Priority = listsched.LargestWCETFirst
	default:
		return opt, fmt.Errorf("unknown -priority %q", prio)
	}
	switch heuristic {
	case "first-fit":
		opt.Partition.Heuristic = partition.FirstFit
	case "best-fit":
		opt.Partition.Heuristic = partition.BestFit
	case "worst-fit":
		opt.Partition.Heuristic = partition.WorstFit
	default:
		return opt, fmt.Errorf("unknown -partition %q", heuristic)
	}
	switch admission {
	case "dbf-approx":
		opt.Partition.Test = partition.ApproxDBF
	case "edf-exact":
		opt.Partition.Test = partition.ExactEDF
	case "dm-rta":
		opt.Partition.Test = partition.DMRta
	default:
		return opt, fmt.Errorf("unknown -admission %q", admission)
	}
	return opt, nil
}

func printAllocation(out io.Writer, sys task.System, alloc *core.Allocation) {
	fmt.Fprintln(out, "verdict: SCHEDULABLE")
	ded, shared := alloc.ProcessorsUsed()
	fmt.Fprintf(out, "processors: %d dedicated (federated), %d shared (partitioned EDF)\n", ded, shared)
	for _, h := range alloc.High {
		tk := sys[h.TaskIndex]
		fmt.Fprintf(out, "  high-density %-12s δ=%.3f → procs %v, template makespan %d ≤ D=%d\n",
			tk.Name, tk.Density(), h.Procs, h.Template.Makespan, tk.D)
	}
	for k, p := range alloc.SharedProcs {
		idxs := alloc.TasksOnShared(k)
		fmt.Fprintf(out, "  shared proc %d: %d tasks:", p, len(idxs))
		for _, i := range idxs {
			fmt.Fprintf(out, " %s(δ=%.2f)", sys[i].Name, sys[i].Density())
		}
		fmt.Fprintln(out)
	}
}

package main

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedsched/internal/gen"
	"fedsched/internal/task"
)

// TestPolicyFlagValidation pins the -policy vocabulary: the three known
// policies are accepted, anything else is refused before the input file is
// read, and -simulate (which replays strict template schedules) refuses the
// split policies.
func TestPolicyFlagValidation(t *testing.T) {
	path := schedulableFile(t)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"default", nil, ""},
		{"fedcons", []string{"-policy", "fedcons"}, ""},
		{"semi", []string{"-policy", "semi"}, ""},
		{"reservation", []string{"-policy", "reservation"}, ""},
		{"unknown", []string{"-policy", "quantum"}, "unknown -policy"},
		{"empty", []string{"-policy", ""}, ""},
		{"simulate-semi", []string{"-policy", "semi", "-simulate", "100"}, "-simulate supports only -policy=fedcons"},
		{"simulate-reservation", []string{"-policy", "reservation", "-simulate", "100"}, "-simulate supports only -policy=fedcons"},
		{"simulate-fedcons", []string{"-policy", "fedcons", "-simulate", "100"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(append(append([]string{}, tc.args...), path), &bytes.Buffer{})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("run(%v) = %v, want success", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestPolicyFedconsDifferential pins that `-policy=fedcons` is inert: across
// 20 generated systems spanning schedulable and unschedulable territory,
// every partition heuristic and both worker-pool widths, the explicit flag
// produces byte-identical output — verdict and allocation JSON, the -trace
// JSONL stream, the -explain text, and the same error — as the pre-policy
// default invocation. It also asserts the strict JSON verdict never leaks
// the split-shape fields (policy, servers), which is what keeps the daemon's
// GET /v1/allocation contract unchanged.
func TestPolicyFedconsDifferential(t *testing.T) {
	const m, n, seeds = 8, 8, 20
	dir := t.TempDir()
	heuristics := []string{"first-fit", "best-fit", "worst-fit"}
	pars := []string{"1", "4"}
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		normU := 0.30 + 0.03*float64(seed) // 0.30 … 0.87: mixed verdicts
		p := gen.DefaultParams(n, normU*float64(m))
		sys, err := gen.System(r, p)
		if err != nil {
			t.Fatal(err)
		}
		path := writeSystem(t, &task.SystemFile{Processors: m, Tasks: sys})
		for _, h := range heuristics {
			for _, par := range pars {
				for _, mode := range []struct {
					name string
					args []string
				}{
					{"json+trace", []string{"-o", "json", "-trace", "@TRACE@"}},
					{"explain", []string{"-explain"}},
				} {
					base := append([]string{"-partition", h, "-par", par}, mode.args...)
					gotOut, gotTrace, gotErr := runCapture(t, dir, base, path, "")
					wantOut, wantTrace, wantErr := runCapture(t, dir, base, path, "fedcons")
					label := fmt.Sprintf("seed %d %s par %s %s", seed, h, par, mode.name)
					if !errors.Is(gotErr, wantErr) && !sameErrString(gotErr, wantErr) {
						t.Fatalf("%s: err %v vs %v", label, gotErr, wantErr)
					}
					if gotOut != wantOut {
						t.Fatalf("%s: output diverges:\n--- default ---\n%s\n--- -policy=fedcons ---\n%s", label, gotOut, wantOut)
					}
					if gotTrace != wantTrace {
						t.Fatalf("%s: trace diverges", label)
					}
					if mode.name == "json+trace" {
						for _, leak := range []string{`"policy"`, `"servers"`} {
							if strings.Contains(gotOut, leak) {
								t.Fatalf("%s: strict JSON verdict leaks %s:\n%s", label, leak, gotOut)
							}
						}
					}
				}
			}
		}
	}
}

// runCapture invokes run with the given base args against path, optionally
// appending -policy=pol, substituting a fresh trace file for the @TRACE@
// placeholder. It returns stdout, the trace file contents and run's error.
func runCapture(t *testing.T, dir string, base []string, path, pol string) (string, string, error) {
	t.Helper()
	args := make([]string, 0, len(base)+3)
	tracePath := ""
	for _, a := range base {
		if a == "@TRACE@" {
			tracePath = filepath.Join(dir, "trace.jsonl")
			os.Remove(tracePath)
			a = tracePath
		}
		args = append(args, a)
	}
	if pol != "" {
		args = append(args, "-policy", pol)
	}
	args = append(args, path)
	var buf bytes.Buffer
	err := run(args, &buf)
	trace := ""
	if tracePath != "" {
		if b, rerr := os.ReadFile(tracePath); rerr == nil {
			trace = string(b)
		}
	}
	return buf.String(), trace, err
}

func sameErrString(a, b error) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Error() == b.Error()
}

package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// writeSystem writes a SystemFile to a temp file and returns its path.
func writeSystem(t *testing.T, sf *task.SystemFile) string {
	t.Helper()
	data, err := task.EncodeSystem(sf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sys.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func schedulableFile(t *testing.T) string {
	return writeSystem(t, &task.SystemFile{
		Processors: 4,
		Tasks: task.System{
			task.MustNew("high", dag.Independent(5, 5, 5, 5), 10, 10),
			task.MustNew("low", dag.Singleton(2), 8, 16),
		},
	})
}

func TestSchedulableVerdict(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{schedulableFile(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"verdict: SCHEDULABLE", "high-density high", "shared proc"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnschedulableVerdict(t *testing.T) {
	path := writeSystem(t, &task.SystemFile{
		Processors: 1,
		Tasks: task.System{
			task.MustNew("big", dag.Independent(5, 5, 5, 5), 10, 10),
		},
	})
	var buf bytes.Buffer
	err := run([]string{path}, &buf)
	if !errors.Is(err, errUnschedulable) {
		t.Fatalf("want errUnschedulable, got %v", err)
	}
	if !strings.Contains(buf.String(), "verdict: UNSCHEDULABLE") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestSimulationOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-simulate", "500", schedulableFile(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deadline misses") {
		t.Errorf("simulation summary missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), " 0 deadline misses") {
		t.Errorf("accepted system should report zero misses:\n%s", buf.String())
	}
}

func TestAllOptionCombinations(t *testing.T) {
	path := schedulableFile(t)
	for _, mp := range []string{"ls-scan", "analytic"} {
		for _, pr := range []string{"insertion", "longest-path", "largest-wcet"} {
			for _, h := range []string{"first-fit", "best-fit", "worst-fit"} {
				for _, a := range []string{"dbf-approx", "edf-exact", "dm-rta"} {
					var buf bytes.Buffer
					err := run([]string{"-minprocs", mp, "-priority", pr, "-partition", h, "-admission", a, path}, &buf)
					if err != nil {
						t.Errorf("%s/%s/%s/%s: %v", mp, pr, h, a, err)
					}
				}
			}
		}
	}
}

func TestBadFlagsAndFiles(t *testing.T) {
	if err := run([]string{"-minprocs", "magic", schedulableFile(t)}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown minprocs")
	}
	if err := run([]string{"-priority", "x", schedulableFile(t)}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown priority")
	}
	if err := run([]string{"-partition", "x", schedulableFile(t)}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown partition heuristic")
	}
	if err := run([]string{"-admission", "x", schedulableFile(t)}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown admission test")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &bytes.Buffer{}); err == nil {
		t.Error("accepted missing file")
	}
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("accepted zero arguments")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &bytes.Buffer{}); err == nil {
		t.Error("accepted malformed JSON")
	}
}

// TestParFlagValidation pins the -par contract: sizes below 1 are rejected
// with a clear error before any file is read, and every accepted size
// produces byte-identical output (the parallel engine's determinism
// guarantee, observed at the CLI surface).
func TestParFlagValidation(t *testing.T) {
	path := schedulableFile(t)
	cases := []struct {
		name    string
		par     string
		wantErr string
	}{
		{"zero", "0", "-par must be ≥ 1"},
		{"negative", "-3", "-par must be ≥ 1"},
		{"sequential", "1", ""},
		{"parallel", "4", ""},
		{"oversubscribed", "64", ""},
	}
	var baseline string
	if err := run([]string{"-explain", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run([]string{"-par", tc.par, "-explain", path}, &buf)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("-par %s: err = %v, want %q", tc.par, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("-par %s: %v", tc.par, err)
			}
			if baseline == "" {
				baseline = buf.String()
			} else if buf.String() != baseline {
				t.Errorf("-par %s output diverges from -par 1:\n%s", tc.par, buf.String())
			}
		})
	}
}

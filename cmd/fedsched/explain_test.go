package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// checkGolden compares got against the named golden file in testdata,
// rewriting it under -update (shared flag in json_test.go).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestExplainGoldenExample1 pins the full -explain narrative for the paper's
// Example 1 on m = 2 (schedulable: low-density, placed by phase 2).
func TestExplainGoldenExample1(t *testing.T) {
	path := writeSystem(t, &task.SystemFile{
		Processors: 2,
		Tasks: task.System{
			task.MustNew("example1", dag.Example1(), dag.Example1D, dag.Example1T),
		},
	})
	var buf bytes.Buffer
	if err := run([]string{"-explain", path}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "explain_example1.txt", buf.Bytes())
}

// TestExplainGoldenPhase1Rejection pins the narrative for a high-density
// rejection: four independent jobs of 6 with window 11 on m = 3 — the scan's
// only candidate μ=3 has LS makespan 12 > 11.
func TestExplainGoldenPhase1Rejection(t *testing.T) {
	path := writeSystem(t, &task.SystemFile{
		Processors: 3,
		Tasks: task.System{
			task.MustNew("hot", dag.Independent(6, 6, 6, 6), 11, 12),
		},
	})
	var buf bytes.Buffer
	if err := run([]string{"-explain", path}, &buf); !errors.Is(err, errUnschedulable) {
		t.Fatalf("want errUnschedulable, got %v", err)
	}
	checkGolden(t, "explain_phase1_reject.txt", buf.Bytes())
}

// TestExplainGoldenPhase2Rejection pins the narrative for a partition
// failure with the decisive DBF* inequality: two C=3 D=5 T=10 tasks on one
// processor — the second demands 6 > 5 at its deadline.
func TestExplainGoldenPhase2Rejection(t *testing.T) {
	path := writeSystem(t, &task.SystemFile{
		Processors: 1,
		Tasks: task.System{
			task.MustNew("a", dag.Singleton(3), 5, 10),
			task.MustNew("b", dag.Singleton(3), 5, 10),
		},
	})
	var buf bytes.Buffer
	if err := run([]string{"-explain", path}, &buf); !errors.Is(err, errUnschedulable) {
		t.Fatalf("want errUnschedulable, got %v", err)
	}
	checkGolden(t, "explain_phase2_reject.txt", buf.Bytes())
}

// TestTraceByteDeterminism runs -trace twice on the same input and demands
// byte-identical JSONL — the acceptance criterion for trace export.
func TestTraceByteDeterminism(t *testing.T) {
	path := writeSystem(t, &task.SystemFile{
		Processors: 4,
		Tasks: task.System{
			task.MustNew("high", dag.Independent(5, 5, 5, 5), 10, 10),
			task.MustNew("low", dag.Singleton(2), 8, 16),
		},
	})
	read := func(name string) []byte {
		t.Helper()
		tr := filepath.Join(t.TempDir(), name)
		var buf bytes.Buffer
		if err := run([]string{"-trace", tr, path}, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := read("a.jsonl"), read("b.jsonl")
	if len(a) == 0 {
		t.Fatal("empty trace file")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("trace not byte-deterministic:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	// Timings must be absent: their presence would break determinism.
	if bytes.Contains(a, []byte("dur_ns")) {
		t.Error("deterministic trace contains timing fields")
	}
}

// TestTraceToStdout covers -trace - interleaved with text output.
func TestTraceToStdout(t *testing.T) {
	path := writeSystem(t, &task.SystemFile{
		Processors: 2,
		Tasks:      task.System{task.MustNew("low", dag.Singleton(2), 8, 16)},
	})
	var buf bytes.Buffer
	if err := run([]string{"-trace", "-", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"fedcons"`)) {
		t.Errorf("stdout trace missing fedcons root:\n%s", buf.String())
	}
}

// TestExplainRejectsJSONOutput: -o json and -explain are mutually exclusive.
func TestExplainRejectsJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-o", "json", "-explain", "x.json"}, &buf); err == nil {
		t.Fatal("want error for -o json -explain")
	}
}

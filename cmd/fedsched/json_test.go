package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/service"
	"fedsched/internal/task"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestJSONGoldenExample1 pins the machine-readable verdict for the paper's
// Example 1 task bit-for-bit. The golden file is the public contract of both
// `fedsched -o json` and the daemon's GET /v1/allocation.
func TestJSONGoldenExample1(t *testing.T) {
	path := writeSystem(t, &task.SystemFile{
		Processors: 3,
		Tasks: task.System{
			task.MustNew("example1", dag.Example1(), dag.Example1D, dag.Example1T),
		},
	})
	var buf bytes.Buffer
	if err := run([]string{"-o", "json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "example1_verdict.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("verdict drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestJSONMatchesDaemon is the no-drift guarantee: for the same system, the
// batch CLI's -o json bytes equal the daemon's GET /v1/allocation bytes after
// admitting the same tasks in file order.
func TestJSONMatchesDaemon(t *testing.T) {
	sf := &task.SystemFile{
		Processors: 6,
		Tasks: task.System{
			task.MustNew("high", dag.Independent(5, 5, 5, 5), 10, 10),
			task.MustNew("ex1", dag.Example1(), dag.Example1D, dag.Example1T),
			task.MustNew("low", dag.Singleton(2), 8, 16),
		},
	}
	var cli bytes.Buffer
	if err := run([]string{"-o", "json", writeSystem(t, sf)}, &cli); err != nil {
		t.Fatal(err)
	}

	svc, err := service.New(service.Config{M: sf.Processors})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	for _, tk := range sf.Tasks {
		body, err := json.Marshal(tk)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/admit", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("daemon rejected %s: %d", tk.Name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/allocation")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var daemon bytes.Buffer
	if _, err := daemon.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cli.Bytes(), daemon.Bytes()) {
		t.Errorf("CLI and daemon verdicts differ:\nCLI:\n%s\ndaemon:\n%s", cli.Bytes(), daemon.Bytes())
	}
}

// TestJSONUnschedulable checks that -o json still emits a verdict (with the
// failure diagnosis) and signals the analysis outcome via the exit-code error.
func TestJSONUnschedulable(t *testing.T) {
	path := writeSystem(t, &task.SystemFile{
		Processors: 1,
		Tasks: task.System{
			task.MustNew("big", dag.Independent(5, 5, 5, 5), 10, 10),
		},
	})
	var buf bytes.Buffer
	err := run([]string{"-o", "json", path}, &buf)
	if !errors.Is(err, errUnschedulable) {
		t.Fatalf("want errUnschedulable, got %v", err)
	}
	var v service.Verdict
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("output is not a Verdict: %v\n%s", err, buf.Bytes())
	}
	if v.Schedulable || v.Reason == "" {
		t.Errorf("unschedulable verdict should carry a reason: %s", buf.Bytes())
	}
}

func TestJSONFlagValidation(t *testing.T) {
	path := schedulableFile(t)
	if err := run([]string{"-o", "yaml", path}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown output format")
	}
	if err := run([]string{"-o", "json", "-simulate", "100", path}, &bytes.Buffer{}); err == nil {
		t.Error("accepted -o json with -simulate")
	}
}

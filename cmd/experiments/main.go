// Command experiments runs the full DESIGN.md experiment suite (E1–E21) and
// prints the result tables as Markdown — the content recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-only E4,E6] [-csv dir] [-seed N] [-systems N] [-par N] [-timing file] [-q]
//
// Sweep experiments run on the shared parallel engine (internal/runner);
// -par bounds its worker pool (default GOMAXPROCS). Tables are byte-identical
// for every -par value: trial RNGs derive from (seed, experiment, point,
// trial), never from execution order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"fedsched/internal/exp"
	"fedsched/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// progressTracker throttles trial-completion updates to quarter marks and
// remembers the final count per experiment for the wall-clock summary line.
// Engine workers call Update concurrently; the mutex serializes the writer.
type progressTracker struct {
	w  io.Writer
	mu sync.Mutex
	// Experiments run one at a time; completed accumulates across the
	// sub-sweeps of one experiment (e.g. E17's three populations).
	id          string
	completed   int
	lastQuarter int
}

// Update implements exp.ProgressFunc.
func (pt *progressTracker) Update(id string, done, total int) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if id != pt.id {
		pt.id, pt.completed, pt.lastQuarter = id, 0, 0
	}
	pt.completed++
	if q := 4 * done / total; q > pt.lastQuarter && done != total {
		pt.lastQuarter = q
		fmt.Fprintf(pt.w, "  %s: %d/%d trials\n", id, done, total)
	}
	if done == total {
		pt.lastQuarter = 0 // next sub-sweep starts its own quarters
	}
}

// Trials reports how many trials the named experiment completed (0 for
// experiments that do not run on the engine).
func (pt *progressTracker) Trials(id string) int {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if id != pt.id {
		return 0
	}
	return pt.completed
}

func run(args []string, out, progress io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "use the scaled-down configuration")
		plot    = fs.Bool("plot", false, "render each experiment's figure as an ASCII chart")
		only    = fs.String("only", "", "comma-separated experiment ids to run (default: all)")
		csvDir  = fs.String("csv", "", "also write one CSV per experiment into this directory")
		outFile = fs.String("o", "", "also write the full Markdown report (with summary) to this file")
		seed    = fs.Int64("seed", 0, "override the suite seed")
		systems = fs.Int("systems", 0, "override systems per sweep point")
		par     = fs.Int("par", 0, "sweep worker pool size (0 = GOMAXPROCS); results are identical for every value")
		timing  = fs.String("timing", "", "record per-analyzer latency histograms and write the JSON summary to this file ('-' = stderr)")
		quiet   = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timing != "" {
		runner.EnableTiming()
	}
	if *quiet {
		progress = io.Discard
	}
	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *systems != 0 {
		cfg.SystemsPerPoint = *systems
	}
	cfg.Par = *par
	tracker := &progressTracker{w: progress}
	cfg.Progress = tracker.Update
	if err := cfg.Validate(); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var collected []*exp.Result
	for _, e := range exp.Suite() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Fprintf(progress, "running %s — %s...\n", e.ID, e.Name)
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if trials := tracker.Trials(e.ID); trials > 0 {
			fmt.Fprintf(progress, "%s done in %v (%d trials)\n", e.ID, elapsed, trials)
		} else {
			fmt.Fprintf(progress, "%s done in %v\n", e.ID, elapsed)
		}
		collected = append(collected, res)
		fmt.Fprintln(out, res.Table.Markdown())
		if *plot {
			if fig := res.Render(56, 14); fig != "" {
				fmt.Fprintln(out, "```")
				fmt.Fprint(out, fig)
				fmt.Fprintln(out, "```")
				fmt.Fprintln(out)
			}
		}
		for _, n := range res.Notes {
			fmt.Fprintf(out, "> %s\n", n)
		}
		fmt.Fprintln(out)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, strings.ToLower(res.ID)+".csv")
			if err := os.WriteFile(path, []byte(res.Table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	if *outFile != "" {
		var sb strings.Builder
		sb.WriteString("## Summary\n\n")
		sb.WriteString(exp.Summary(collected))
		sb.WriteString("\n## Measured tables\n\n")
		if err := exp.WriteReport(&sb, collected, exp.ReportOptions{Figures: *plot}); err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	if *timing != "" {
		buf, err := json.MarshalIndent(runner.TimingSnapshot(), "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if *timing == "-" {
			_, err = progress.Write(buf)
			return err
		}
		return os.WriteFile(*timing, buf, 0o644)
	}
	return nil
}

// Command experiments runs the full DESIGN.md experiment suite (E1–E12) and
// prints the result tables as Markdown — the content recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-only E4,E6] [-csv dir] [-seed N] [-systems N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fedsched/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "use the scaled-down configuration")
		plot    = fs.Bool("plot", false, "render each experiment's figure as an ASCII chart")
		only    = fs.String("only", "", "comma-separated experiment ids to run (default: all)")
		csvDir  = fs.String("csv", "", "also write one CSV per experiment into this directory")
		outFile = fs.String("o", "", "also write the full Markdown report (with summary) to this file")
		seed    = fs.Int64("seed", 0, "override the suite seed")
		systems = fs.Int("systems", 0, "override systems per sweep point")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *systems != 0 {
		cfg.SystemsPerPoint = *systems
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var collected []*exp.Result
	for _, e := range exp.Suite() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s — %s...\n", e.ID, e.Name)
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		collected = append(collected, res)
		fmt.Fprintln(out, res.Table.Markdown())
		if *plot {
			if fig := res.Render(56, 14); fig != "" {
				fmt.Fprintln(out, "```")
				fmt.Fprint(out, fig)
				fmt.Fprintln(out, "```")
				fmt.Fprintln(out)
			}
		}
		for _, n := range res.Notes {
			fmt.Fprintf(out, "> %s\n", n)
		}
		fmt.Fprintln(out)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, strings.ToLower(res.ID)+".csv")
			if err := os.WriteFile(path, []byte(res.Table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	if *outFile != "" {
		var sb strings.Builder
		sb.WriteString("## Summary\n\n")
		sb.WriteString(exp.Summary(collected))
		sb.WriteString("\n## Measured tables\n\n")
		if err := exp.WriteReport(&sb, collected, exp.ReportOptions{Figures: *plot}); err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

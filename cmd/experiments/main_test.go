package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-only", "E1", "-quick"}, &buf, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E1 — Example 1") {
		t.Errorf("missing E1 table:\n%s", out)
	}
	if strings.Contains(out, "E2 —") {
		t.Error("-only E1 also ran E2")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	var buf bytes.Buffer
	if err := run([]string{"-only", "E2", "-quick", "-csv", dir}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "min m (FEDCONS)") {
		t.Errorf("csv content: %s", data)
	}
}

func TestOverrides(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E1", "-systems", "2", "-seed", "99"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-systems", "-5"}, &bytes.Buffer{}, io.Discard); err == nil {
		t.Error("accepted negative systems override")
	}
}

func TestPlotFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E4", "-quick", "-plot"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* ratio") {
		t.Errorf("plot legend missing:\n%s", out)
	}
	if !strings.Contains(out, " 0.00 |") {
		t.Errorf("plot axis missing:\n%s", out)
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-only", "E1,E2", "-quick", "-plot", "-o", path}, &bytes.Buffer{}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"## Summary", "| E1 |", "| E2 |", "## Measured tables", "### E1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report file missing %q", want)
		}
	}
}

// TestParDeterminism is the command-level check of the engine guarantee: the
// rendered tables are byte-identical whatever -par says.
func TestParDeterminism(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run([]string{"-only", "E4,E6", "-quick", "-par", "1"}, &seq, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-only", "E4,E6", "-quick", "-par", "8"}, &par, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Errorf("-par 1 and -par 8 outputs differ:\n--- par=1 ---\n%s\n--- par=8 ---\n%s", seq.String(), par.String())
	}
}

func TestProgressReporting(t *testing.T) {
	var out, progress bytes.Buffer
	if err := run([]string{"-only", "E4", "-quick"}, &out, &progress); err != nil {
		t.Fatal(err)
	}
	p := progress.String()
	if !strings.Contains(p, "running E4") {
		t.Errorf("progress missing experiment header:\n%s", p)
	}
	if !strings.Contains(p, "E4 done in") || !strings.Contains(p, "trials)") {
		t.Errorf("progress missing wall-clock/trial summary:\n%s", p)
	}
	if strings.Contains(out.String(), "running E4") {
		t.Error("progress lines leaked into the report writer")
	}
}

func TestQuietFlag(t *testing.T) {
	var out, progress bytes.Buffer
	if err := run([]string{"-only", "E4", "-quick", "-q"}, &out, &progress); err != nil {
		t.Fatal(err)
	}
	if progress.Len() != 0 {
		t.Errorf("-q still wrote progress: %q", progress.String())
	}
	if !strings.Contains(out.String(), "E4 —") {
		t.Error("-q suppressed the report itself")
	}
}

// TestParFlagValidation: negative pool sizes are rejected (through
// exp.Config.Validate); 0 (= GOMAXPROCS) and explicit sizes run, and the
// engine's determinism makes their reports byte-identical.
func TestParFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		par     string
		wantErr string
	}{
		{"negative", "-1", "Par must be ≥ 0"},
		{"gomaxprocs", "0", ""},
		{"bounded", "2", ""},
	}
	var baseline string
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run([]string{"-only", "E2", "-quick", "-par", tc.par}, &buf, io.Discard)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("-par %s: err = %v, want %q", tc.par, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("-par %s: %v", tc.par, err)
			}
			if baseline == "" {
				baseline = buf.String()
			} else if buf.String() != baseline {
				t.Errorf("-par %s report diverges:\n%s", tc.par, buf.String())
			}
		})
	}
}

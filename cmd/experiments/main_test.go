package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-only", "E1", "-quick"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E1 — Example 1") {
		t.Errorf("missing E1 table:\n%s", out)
	}
	if strings.Contains(out, "E2 —") {
		t.Error("-only E1 also ran E2")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	var buf bytes.Buffer
	if err := run([]string{"-only", "E2", "-quick", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "min m (FEDCONS)") {
		t.Errorf("csv content: %s", data)
	}
}

func TestOverrides(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E1", "-systems", "2", "-seed", "99"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-systems", "-5"}, &bytes.Buffer{}); err == nil {
		t.Error("accepted negative systems override")
	}
}

func TestPlotFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "E4", "-quick", "-plot"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* ratio") {
		t.Errorf("plot legend missing:\n%s", out)
	}
	if !strings.Contains(out, " 0.00 |") {
		t.Errorf("plot axis missing:\n%s", out)
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-only", "E1,E2", "-quick", "-plot", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"## Summary", "| E1 |", "| E2 |", "## Measured tables", "### E1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report file missing %q", want)
		}
	}
}

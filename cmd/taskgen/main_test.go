package main

import (
	"bytes"
	"testing"

	"fedsched/internal/task"
)

func TestGeneratesValidSystemFile(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-tasks", "5", "-m", "4", "-util", "0.4", "-seed", "7"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := task.DecodeSystem(buf.Bytes())
	if err != nil {
		t.Fatalf("output is not a valid system file: %v", err)
	}
	if sf.Processors != 4 || len(sf.Tasks) != 5 {
		t.Errorf("m=%d tasks=%d, want 4/5", sf.Processors, len(sf.Tasks))
	}
	if !sf.Tasks.Constrained() {
		t.Error("default generation must be constrained-deadline")
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-seed", "3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different output")
	}
	var c bytes.Buffer
	if err := run([]string{"-seed", "4"}, &c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different seeds produced identical output")
	}
}

func TestShapes(t *testing.T) {
	for _, shape := range []string{"erdos-renyi", "fork-join", "series-parallel"} {
		var buf bytes.Buffer
		if err := run([]string{"-shape", shape, "-tasks", "2"}, &buf); err != nil {
			t.Errorf("shape %s: %v", shape, err)
		}
	}
	if err := run([]string{"-shape", "nonsense"}, &bytes.Buffer{}); err == nil {
		t.Error("accepted unknown shape")
	}
}

func TestRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-m", "0"},
		{"-tasks", "0"},
		{"-util", "0"},
		{"-beta-min", "0"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// Command taskgen generates a random constrained-deadline sporadic DAG task
// system and writes it as JSON (the format consumed by cmd/fedsched and
// cmd/simulate).
//
// Usage:
//
//	taskgen -tasks 10 -m 8 -util 0.5 -seed 42 > system.json
//
// -util is the normalized utilization U_sum/m. Generation is fully
// deterministic for a given seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"fedsched/internal/gen"
	"fedsched/internal/task"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "taskgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("taskgen", flag.ContinueOnError)
	var (
		tasks    = fs.Int("tasks", 10, "number of tasks")
		m        = fs.Int("m", 8, "platform size the system targets (recorded in the file)")
		util     = fs.Float64("util", 0.5, "normalized utilization U_sum/m")
		seed     = fs.Int64("seed", 1, "generator seed")
		shape    = fs.String("shape", "erdos-renyi", "DAG shape: erdos-renyi, fork-join, series-parallel, layered")
		minV     = fs.Int("min-verts", 20, "minimum vertices per DAG")
		maxV     = fs.Int("max-verts", 50, "maximum vertices per DAG")
		edgeProb = fs.Float64("edge-prob", 0.1, "Erdős–Rényi edge probability")
		betaMin  = fs.Float64("beta-min", 0.25, "deadline tightness lower bound (D = len + β(T−len))")
		betaMax  = fs.Float64("beta-max", 1.0, "deadline tightness upper bound")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *m < 1 {
		return fmt.Errorf("-m must be ≥ 1")
	}
	p := gen.DefaultParams(*tasks, *util*float64(*m))
	p.MinVerts, p.MaxVerts = *minV, *maxV
	p.EdgeProb = *edgeProb
	p.BetaMin, p.BetaMax = *betaMin, *betaMax
	switch *shape {
	case "erdos-renyi":
		p.Shape = gen.ErdosRenyi
	case "fork-join":
		p.Shape = gen.ForkJoin
	case "series-parallel":
		p.Shape = gen.SeriesParallel
	case "layered":
		p.Shape = gen.Layered
	default:
		return fmt.Errorf("unknown -shape %q", *shape)
	}

	sys, err := gen.System(rand.New(rand.NewSource(*seed)), p)
	if err != nil {
		return err
	}
	data, err := task.EncodeSystem(&task.SystemFile{Processors: *m, Tasks: sys})
	if err != nil {
		return err
	}
	_, err = out.Write(append(data, '\n'))
	return err
}

package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestAnalyzeGoldenExample1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-example1", "-minm", "-dbf", "60"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "analyze_example1", buf.String())
}

func TestAnalyzeGoldenExample2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-example2", "4", "-minm"}, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "analyze_example2", buf.String())
}

func TestAnalyzeExample2Flags(t *testing.T) {
	if err := run([]string{"-example1", "-example2", "3"}, &bytes.Buffer{}); err == nil {
		t.Error("accepted -example1 together with -example2")
	}
	var buf bytes.Buffer
	if err := run([]string{"-example2", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Example 2 tasks are density-1 HIGH tasks; with n = 2 both verdict rows
	// and the two task rows must be present.
	for _, want := range []string{"tau1", "tau2", "HIGH", "FEDCONS (paper)", "SCHEDULABLE"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeExample1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-example1", "-minm"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"tau1", "0.562", "0.450", // δ = 9/16, u = 9/20
		"FEDCONS (paper)", "SCHEDULABLE", "min m = 1",
		"NECESSARY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeMixedSystemWithDBF(t *testing.T) {
	data, err := task.EncodeSystem(&task.SystemFile{
		Processors: 4,
		Tasks: task.System{
			task.MustNew("high", dag.Independent(5, 5, 5, 5), 10, 10),
			task.MustNew("low", dag.Singleton(2), 8, 16),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sys.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-dbf", "50", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MINPROCS sizing") {
		t.Errorf("missing MINPROCS section:\n%s", out)
	}
	if !strings.Contains(out, "t,total_dbf,total_dbf_star") {
		t.Errorf("missing dbf CSV header:\n%s", out)
	}
	// First breakpoint is the low task's D=8 with demand 2.
	if !strings.Contains(out, "8,2,2.000") {
		t.Errorf("missing dbf point 8,2,2.000:\n%s", out)
	}
	if !strings.Contains(out, "HIGH") || !strings.Contains(out, "low") {
		t.Errorf("classification missing:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("accepted no input")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "no.json")}, &bytes.Buffer{}); err == nil {
		t.Error("accepted missing file")
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func TestAnalyzeExample1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-example1", "-minm"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"tau1", "0.562", "0.450", // δ = 9/16, u = 9/20
		"FEDCONS (paper)", "SCHEDULABLE", "min m = 1",
		"NECESSARY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeMixedSystemWithDBF(t *testing.T) {
	data, err := task.EncodeSystem(&task.SystemFile{
		Processors: 4,
		Tasks: task.System{
			task.MustNew("high", dag.Independent(5, 5, 5, 5), 10, 10),
			task.MustNew("low", dag.Singleton(2), 8, 16),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sys.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-dbf", "50", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MINPROCS sizing") {
		t.Errorf("missing MINPROCS section:\n%s", out)
	}
	if !strings.Contains(out, "t,total_dbf,total_dbf_star") {
		t.Errorf("missing dbf CSV header:\n%s", out)
	}
	// First breakpoint is the low task's D=8 with demand 2.
	if !strings.Contains(out, "8,2,2.000") {
		t.Errorf("missing dbf point 8,2,2.000:\n%s", out)
	}
	if !strings.Contains(out, "HIGH") || !strings.Contains(out, "low") {
		t.Errorf("classification missing:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("accepted no input")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "no.json")}, &bytes.Buffer{}); err == nil {
		t.Error("accepted missing file")
	}
}

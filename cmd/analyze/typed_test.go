package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTypedRow pins the -policy=typed surface of the report: the typed row
// appears only when requested, is labeled with the declared platform when
// -m-types is given, and the budget flags demand the typed policy.
func TestTypedRow(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
		wantRow string
	}{
		{
			name:    "typed-default",
			args:    []string{"-policy", "typed", "-example1"},
			wantRow: "TYPED (Han et al.)",
		},
		{
			name:    "typed-budgets",
			args:    []string{"-policy", "typed", "-m-types", "a:1", "-example1"},
			wantRow: "TYPED (a:1)",
		},
		{
			name:    "mtypes-without-typed",
			args:    []string{"-m-types", "a:1", "-example1"},
			wantErr: "-m-types requires -policy=typed",
		},
		{
			name:    "bad-spec",
			args:    []string{"-policy", "typed", "-m-types", "a1", "-example1"},
			wantErr: "want <type>:<count>",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			if !strings.Contains(out.String(), tc.wantRow) {
				t.Fatalf("report missing row %q:\n%s", tc.wantRow, out.String())
			}
		})
	}
}

// TestTypedRowAgreesWithDefault: the typed report is the default report plus
// one appended row — the report body above it stays byte-identical.
func TestTypedRowAgreesWithDefault(t *testing.T) {
	var def, typed bytes.Buffer
	if err := run([]string{"-example1"}, &def); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-policy", "typed", "-example1"}, &typed); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(typed.String(), def.String()) {
		t.Fatalf("-policy=typed report is not default report + appended row:\n--- default ---\n%s\n--- typed ---\n%s", def.String(), typed.String())
	}
}

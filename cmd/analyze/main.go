// Command analyze prints a complete schedulability-analysis report for a
// task-system JSON file: per-task model quantities, the FEDCONS verdict under
// every configuration, every baseline's verdict, the minimum platform each
// needs, and (optionally) the system's demand-bound curves.
//
// Usage:
//
//	analyze [-minm] [-dbf horizon] system.json
//	analyze -example1              # the paper's Example 1 DAG task
//	analyze -example2 n            # the paper's Example 2 family at size n
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fedsched/internal/baseline"
	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/dbf"
	"fedsched/internal/partition"
	"fedsched/internal/service"
	"fedsched/internal/task"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		minm     = fs.Bool("minm", false, "search for the minimum platform size each method needs (up to 256)")
		dbfH     = fs.Int64("dbf", 0, "if > 0, dump Σ DBF and Σ DBF* curves up to this horizon as CSV")
		policy   = fs.String("policy", "fedcons", "also report this admission policy's verdict: fedcons (no extra row), semi, reservation or typed")
		mtypesF  = fs.String("m-types", "", "typed platform for the -policy=typed row, e.g. a:4,b:4 (must sum to the system's processor count)")
		example  bool
		example2 = fs.Int("example2", 0, "analyze the paper's Example 2 family at this size n instead of a file")
	)
	fs.BoolVar(&example, "example1", false, "analyze the paper's Example 1 system instead of a file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pol, err := service.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	mtypes, err := service.ParseMTypes(*mtypesF)
	if err != nil {
		return err
	}
	if mtypes != nil && pol != core.PolicyTyped {
		return fmt.Errorf("-m-types requires -policy=typed")
	}

	var sf *task.SystemFile
	switch {
	case example && *example2 > 0:
		return fmt.Errorf("-example1 and -example2 are mutually exclusive")
	case example:
		sf = &task.SystemFile{
			Processors: 1,
			Tasks:      task.System{task.MustNew("tau1", dag.Example1(), dag.Example1D, dag.Example1T)},
		}
	case *example2 > 0:
		sf = example2System(*example2)
	default:
		if fs.NArg() != 1 {
			return fmt.Errorf("expected exactly one input file (or -example1 / -example2 n)")
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		sf, err = task.DecodeSystem(data)
		if err != nil {
			return err
		}
	}
	sys, m := sf.Tasks, sf.Processors

	// --- Per-task table. ---
	fmt.Fprintf(out, "task model (m = %d):\n", m)
	fmt.Fprintf(out, "%-12s %5s %5s %7s %7s %6s %7s %7s %7s %7s %-6s\n",
		"name", "|V|", "|E|", "vol", "len", "width", "D", "T", "δ", "u", "class")
	for _, tk := range sys {
		fmt.Fprintf(out, "%-12s %5d %5d %7d %7d %6d %7d %7d %7.3f %7.3f %-6s\n",
			tk.Name, tk.G.N(), tk.G.M(), tk.Volume(), tk.Len(), tk.G.Width(),
			tk.D, tk.T, tk.Density(), tk.Utilization(), class(tk))
	}
	fmt.Fprintf(out, "U_sum = %.3f  Σδ = %.3f  constrained=%v implicit=%v\n\n",
		sys.USum(), sys.DensitySum(), sys.Constrained(), sys.Implicit())

	// --- MINPROCS sizing for high-density tasks. ---
	high, _ := sys.SplitByDensity()
	if len(high) > 0 {
		fmt.Fprintln(out, "MINPROCS sizing (budget = m):")
		for _, tk := range high {
			muS, tmplS, okS := core.Minprocs(tk, m, nil)
			muA, _, okA := core.MinprocsAnalytic(tk, m, nil)
			fmt.Fprintf(out, "  %-12s scan: %s  analytic: %s",
				tk.Name, muOrInf(muS, okS), muOrInf(muA, okA))
			if okS {
				fmt.Fprintf(out, "  (template makespan %d, window %d)", tmplS.Makespan, min64(tk.D, tk.T))
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintln(out)
	}

	// --- Verdicts. ---
	type method struct {
		name string
		test func(task.System, int) bool
	}
	methods := []method{
		{"NECESSARY (upper bound)", baseline.Necessary},
		{"FEDCONS (paper)", func(s task.System, mm int) bool { return core.Schedulable(s, mm, core.Options{}) }},
		{"FEDCONS analytic sizing", func(s task.System, mm int) bool {
			return core.Schedulable(s, mm, core.Options{Minprocs: core.Analytic})
		}},
		{"FEDCONS exact-EDF bins", func(s task.System, mm int) bool {
			return core.Schedulable(s, mm, core.Options{Partition: partition.Options{Test: partition.ExactEDF}})
		}},
		{"FEDCONS DM-RTA bins", func(s task.System, mm int) bool {
			return core.Schedulable(s, mm, core.Options{Partition: partition.Options{Test: partition.DMRta}})
		}},
		{"LI-FED-D", baseline.LiFedD},
		{"LI-FED (implicit only)", baseline.LiFed},
		{"PART-SEQ", baseline.PartSeq},
	}
	if pol != "" {
		// Appended, not inserted, so the default table stays byte-identical.
		label := "SEMI-FED (Jiang et al.)"
		switch pol {
		case core.PolicyReservation:
			label = "RESERVATION (Ueter et al.)"
		case core.PolicyTyped:
			label = "TYPED (Han et al.)"
			if mtypes != nil {
				label = fmt.Sprintf("TYPED (%s)", core.FormatMTypes(mtypes))
			}
		}
		methods = append(methods, method{label, func(s task.System, mm int) bool {
			opt := core.Options{Policy: pol}
			// The declared budgets only fit the declared platform; a -minm
			// probe at a different size falls back to a single-type platform.
			if sumInts(mtypes) == mm {
				opt.MTypes = mtypes
			}
			return core.Schedulable(s, mm, opt)
		}})
	}
	fmt.Fprintln(out, "verdicts:")
	for _, mt := range methods {
		line := fmt.Sprintf("  %-26s %v", mt.name, verdict(mt.test(sys, m)))
		if *minm {
			line += fmt.Sprintf("   min m = %s", minMString(sys, mt.test))
		}
		fmt.Fprintln(out, line)
	}

	// --- Demand curves. ---
	if *dbfH > 0 {
		set := dbf.AsSporadics(sys)
		fmt.Fprintln(out, "\nt,total_dbf,total_dbf_star")
		seen := map[task.Time]bool{}
		for _, s := range set {
			for t := s.D; t <= *dbfH; t += s.T {
				seen[t] = true
			}
		}
		var points []task.Time
		for t := range seen {
			points = append(points, t)
		}
		sortTimes(points)
		for _, t := range points {
			star, _ := dbf.TotalApproxRat(set, t).Float64()
			fmt.Fprintf(out, "%d,%d,%.3f\n", t, dbf.TotalDBF(set, t), star)
		}
	}
	return nil
}

// example2System builds the paper's Example 2 family at size n: n singleton
// tasks with C = 1, D = 1, T = n. Each has density 1 — high-density by the
// paper's classification — so federated approaches dedicate one processor per
// task even though total utilization is exactly 1. The platform is sized at n
// so FEDCONS accepts and the capacity loss is visible in the -minm column.
func example2System(n int) *task.SystemFile {
	sys := make(task.System, 0, n)
	for i := 0; i < n; i++ {
		sys = append(sys, task.MustNew(fmt.Sprintf("tau%d", i+1), dag.Singleton(1), 1, task.Time(n)))
	}
	return &task.SystemFile{Processors: n, Tasks: sys}
}

func class(tk *task.DAGTask) string {
	if tk.HighDensity() {
		return "HIGH"
	}
	return "low"
}

func verdict(ok bool) string {
	if ok {
		return "SCHEDULABLE"
	}
	return "unschedulable"
}

func muOrInf(mu int, ok bool) string {
	if !ok {
		return "∞"
	}
	return fmt.Sprint(mu)
}

func minMString(sys task.System, test func(task.System, int) bool) string {
	for m := 1; m <= 256; m++ {
		if test(sys, m) {
			return fmt.Sprint(m)
		}
	}
	return ">256"
}

func min64(a, b task.Time) task.Time {
	if a < b {
		return a
	}
	return b
}

func sumInts(v []int) int {
	t := 0
	for _, x := range v {
		t += x
	}
	return t
}

func sortTimes(ts []task.Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestPolicyFlag pins the -policy surface of the report: unknown names are
// refused, the default report carries no policy row (so its bytes are
// unchanged from earlier releases), and the split policies append exactly
// one labeled verdict row.
func TestPolicyFlag(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantErr    string
		wantRow    string
		forbidRows []string
	}{
		{
			name:    "unknown",
			args:    []string{"-policy", "quantum", "-example1"},
			wantErr: "unknown -policy",
		},
		{
			name:       "default",
			args:       []string{"-example1"},
			forbidRows: []string{"SEMI-FED", "RESERVATION"},
		},
		{
			name:       "fedcons",
			args:       []string{"-policy", "fedcons", "-example1"},
			forbidRows: []string{"SEMI-FED", "RESERVATION"},
		},
		{
			name:       "semi",
			args:       []string{"-policy", "semi", "-example1"},
			wantRow:    "SEMI-FED (Jiang et al.)",
			forbidRows: []string{"RESERVATION"},
		},
		{
			name:       "reservation",
			args:       []string{"-policy", "reservation", "-example1"},
			wantRow:    "RESERVATION (Ueter et al.)",
			forbidRows: []string{"SEMI-FED"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tc.args, &buf)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			out := buf.String()
			if tc.wantRow != "" && !strings.Contains(out, tc.wantRow) {
				t.Errorf("report missing %q:\n%s", tc.wantRow, out)
			}
			for _, row := range tc.forbidRows {
				if strings.Contains(out, row) {
					t.Errorf("report unexpectedly contains %q:\n%s", row, out)
				}
			}
		})
	}
}

// TestPolicyRowAgreesWithDefault: appending the policy row must not perturb
// the rest of the report — the default report is a strict prefix of the
// -policy=semi report for the same input.
func TestPolicyRowAgreesWithDefault(t *testing.T) {
	var def, semi bytes.Buffer
	if err := run([]string{"-example1"}, &def); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-policy", "semi", "-example1"}, &semi); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(semi.String(), def.String()) {
		t.Fatalf("-policy=semi report is not default report + appended row:\n--- default ---\n%s\n--- semi ---\n%s", def.String(), semi.String())
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"fedsched/internal/gen"
)

// loadgenConfig parameterizes the closed-loop load generator.
type loadgenConfig struct {
	target    string
	duration  time.Duration
	workers   int
	seed      int64
	clusters  int           // distinct cluster names; 1 = legacy unclustered requests
	jsonPath  string        // if set, append the summary as one JSON line
	sloBudget time.Duration // admit-latency budget for the SLO summary
}

// loadgenSummary is the machine-readable run report (-json), consumed by
// scripts/shardbench to build results/timing_shards.json.
type loadgenSummary struct {
	Target      string  `json:"target"`
	Workers     int     `json:"workers"`
	Clusters    int     `json:"clusters"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	RequestsPS  float64 `json:"requests_per_s"`
	Admits      int64   `json:"admits"`
	AdmitsPS    float64 `json:"admits_per_s"`
	Rejects     int64   `json:"rejects"`
	Shed        int64   `json:"shed"`
	Timeouts    int64   `json:"timeouts"`
	Others      int64   `json:"others"`
	Removes     int64   `json:"removes"`
	AdmitP50Ns  int64   `json:"admit_p50_ns"`
	AdmitP99Ns  int64   `json:"admit_p99_ns"`
	AdmitP999Ns int64   `json:"admit_p999_ns"`

	// Client-side SLO accounting, measured where the user experiences it:
	// over-budget counts include queue wait, sheds and timeouts.
	SLOLatencyBudgetNs   int64   `json:"slo_latency_budget_ns"`
	SLOLatencyOverBudget int64   `json:"slo_latency_over_budget"`
	SLOLatencyAttainment float64 `json:"slo_latency_attainment"` // fraction of requests within budget
	SLOErrorBudgetSpend  float64 `json:"slo_error_budget_spend"` // (sheds+timeouts+errors)/requests ÷ the 0.1% allowance
}

// workerStats accumulates one worker's counters; they are summed at the end
// so the hot loop never contends on shared state.
type workerStats struct {
	requests  int64
	admits    int64
	rejects   int64
	shed      int64
	timeouts  int64
	others    int64
	removes   int64
	latencies []time.Duration
}

// runLoadgen drives a fedschedd instance with a reproducible stream of
// generated DAG tasks. Each worker is a closed loop: it POSTs an admission,
// waits for the verdict, and — to keep the platform churning rather than
// saturating — removes one of its own admitted tasks whenever an admission
// is rejected or its live set grows past a small bound. Throughput and
// latency quantiles are reported at the end.
func runLoadgen(ctx context.Context, out io.Writer, cfg loadgenConfig) error {
	if cfg.target == "" {
		return fmt.Errorf("-loadgen requires -target URL")
	}
	if cfg.workers < 1 {
		return fmt.Errorf("-workers must be ≥ 1, got %d", cfg.workers)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	if _, err := getOK(client, cfg.target+"/v1/healthz"); err != nil {
		return fmt.Errorf("target not healthy: %w", err)
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()

	stats := make([]workerStats, cfg.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			driveWorker(ctx, client, cfg, w, &stats[w])
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerStats
	for i := range stats {
		total.requests += stats[i].requests
		total.admits += stats[i].admits
		total.rejects += stats[i].rejects
		total.shed += stats[i].shed
		total.timeouts += stats[i].timeouts
		total.others += stats[i].others
		total.removes += stats[i].removes
		total.latencies = append(total.latencies, stats[i].latencies...)
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
	q := func(p float64) time.Duration {
		if len(total.latencies) == 0 {
			return 0
		}
		return total.latencies[int(p*float64(len(total.latencies)-1))]
	}
	fmt.Fprintf(out, "loadgen: %d workers over %d cluster(s) against %s for %v\n",
		cfg.workers, cfg.clusterCount(), cfg.target, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  admissions: %d requests (%.1f/s): %d admitted, %d rejected, %d shed, %d timed out, %d other\n",
		total.requests, float64(total.requests)/elapsed.Seconds(),
		total.admits, total.rejects, total.shed, total.timeouts, total.others)
	fmt.Fprintf(out, "  removals:   %d\n", total.removes)
	fmt.Fprintf(out, "  admit latency: p50=%v p99=%v\n", q(0.50), q(0.99))

	// SLO view of the same run, mirroring the server's burn-rate objectives:
	// 99% of requests within the latency budget, 99.9% free of sheds,
	// timeouts and transport/server errors.
	budget := cfg.sloBudget
	if budget <= 0 {
		budget = 5 * time.Millisecond
	}
	var overBudget int64
	for _, lat := range total.latencies {
		if lat > budget {
			overBudget++
		}
	}
	attainment, errSpend := 1.0, 0.0
	if total.requests > 0 {
		attainment = 1 - float64(overBudget)/float64(total.requests)
		errSpend = (float64(total.shed+total.timeouts+total.others) / float64(total.requests)) / 0.001
	}
	fmt.Fprintf(out, "  slo: %.2f%% of admissions within %v (%d over budget); error-budget spend %.2fx\n",
		attainment*100, budget, overBudget, errSpend)

	if cfg.jsonPath != "" {
		sum := loadgenSummary{
			Target:      cfg.target,
			Workers:     cfg.workers,
			Clusters:    cfg.clusterCount(),
			DurationS:   elapsed.Seconds(),
			Requests:    total.requests,
			RequestsPS:  float64(total.requests) / elapsed.Seconds(),
			Admits:      total.admits,
			AdmitsPS:    float64(total.admits) / elapsed.Seconds(),
			Rejects:     total.rejects,
			Shed:        total.shed,
			Timeouts:    total.timeouts,
			Others:      total.others,
			Removes:     total.removes,
			AdmitP50Ns:  q(0.50).Nanoseconds(),
			AdmitP99Ns:  q(0.99).Nanoseconds(),
			AdmitP999Ns: q(0.999).Nanoseconds(),

			SLOLatencyBudgetNs:   budget.Nanoseconds(),
			SLOLatencyOverBudget: overBudget,
			SLOLatencyAttainment: attainment,
			SLOErrorBudgetSpend:  errSpend,
		}
		data, err := json.Marshal(sum)
		if err != nil {
			return err
		}
		f, err := os.OpenFile(cfg.jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening -json file: %w", err)
		}
		if _, err := f.Write(append(data, '\n')); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// clusterCount normalizes the cluster knob (0 from a zero-value config
// behaves like the flag default of 1).
func (cfg loadgenConfig) clusterCount() int {
	if cfg.clusters < 1 {
		return 1
	}
	return cfg.clusters
}

// clusterFor assigns worker w its cluster. Workers are striped across
// clusters so every cluster is driven and a worker's removals always target
// the shard that admitted its tasks. With one cluster no header is sent,
// preserving the legacy unclustered request shape.
func (cfg loadgenConfig) clusterFor(w int) string {
	if cfg.clusterCount() == 1 {
		return ""
	}
	return fmt.Sprintf("lgc-%d", w%cfg.clusterCount())
}

// driveWorker is one closed-loop client.
func driveWorker(ctx context.Context, client *http.Client, cfg loadgenConfig, w int, st *workerStats) {
	r := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
	cluster := cfg.clusterFor(w)
	p := gen.DefaultParams(1, 1) // per-task generation; utilization drawn below
	p.MinVerts, p.MaxVerts = 10, 30
	var live []string
	seq := 0
	for ctx.Err() == nil {
		seq++
		g := gen.Graph(r, p)
		u := 0.05 + r.Float64()*1.45 // spans low- and high-density tasks
		tk, err := gen.TaskFor(r, g, u, p)
		if err != nil {
			continue
		}
		tk.Name = fmt.Sprintf("lg-w%d-%d", w, seq)

		body, err := json.Marshal(tk)
		if err != nil {
			continue
		}
		t0 := time.Now()
		status, err := post(ctx, client, cfg.target+"/v1/admit", cluster, body)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			st.others++
			continue
		}
		st.requests++
		st.latencies = append(st.latencies, time.Since(t0))
		overfull := false
		switch status {
		case http.StatusOK:
			st.admits++
			live = append(live, tk.Name)
			overfull = len(live) > 8
		case http.StatusConflict:
			st.rejects++
			overfull = len(live) > 0
		case http.StatusTooManyRequests:
			st.shed++
			time.Sleep(10 * time.Millisecond)
		case http.StatusGatewayTimeout:
			st.timeouts++
		default:
			st.others++
		}
		// Churn: drop one of our tasks so the platform never wedges full.
		if overfull && len(live) > 0 {
			i := r.Intn(len(live))
			name := live[i]
			live = append(live[:i], live[i+1:]...)
			if status, err := del(ctx, client, cfg.target+"/v1/tasks/"+name, cluster); err == nil && status == http.StatusOK {
				st.removes++
			}
		}
	}
}

func post(ctx context.Context, client *http.Client, url, cluster string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if cluster != "" {
		req.Header.Set("X-Cluster", cluster)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func del(ctx context.Context, client *http.Client, url, cluster string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return 0, err
	}
	if cluster != "" {
		req.Header.Set("X-Cluster", cluster)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func getOK(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return body, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return body, nil
}

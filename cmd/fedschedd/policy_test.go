package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// TestPolicyFlagValidation: the daemon refuses unknown -policy values before
// binding a port, and accepts the three known ones (checked here by booting
// with each and asserting the startup banner, which names non-default
// policies and stays byte-identical to earlier releases for the default).
func TestPolicyFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown", []string{"-policy", "quantum"}, "unknown -policy"},
		{"empty-vocab", []string{"-policy", "rate-monotonic"}, "unknown -policy"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}

	for _, tc := range []struct {
		policy     string
		wantBanner string
	}{
		{"fedcons", " ls-scan/insertion/first-fit/dbf-approx listening"},
		{"semi", " semi/ls-scan/insertion/first-fit/dbf-approx listening"},
		{"reservation", " reservation/ls-scan/insertion/first-fit/dbf-approx listening"},
	} {
		t.Run(tc.policy, func(t *testing.T) {
			addrfile := filepath.Join(t.TempDir(), "addr")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var out syncBuffer
			done := make(chan error, 1)
			go func() {
				done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile, "-m", "8", "-policy", tc.policy}, &out)
			}()
			waitForAddr(t, addrfile)
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run returned %v", err)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("daemon did not shut down")
			}
			if log := out.String(); !strings.Contains(log, tc.wantBanner) {
				t.Errorf("banner missing %q:\n%s", tc.wantBanner, log)
			}
		})
	}
}

// TestPolicyRecoveryMismatch pins the durability contract of -policy: a WAL
// directory written under one policy refuses to boot under another (the
// snapshot header records the policy), while rebooting under the same policy
// recovers the admitted system.
func TestPolicyRecoveryMismatch(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "wal")
	client := &http.Client{Timeout: 5 * time.Second}
	tk := task.MustNew("ex1", dag.Example1(), dag.Example1D, dag.Example1T)
	body, err := json.Marshal(tk)
	if err != nil {
		t.Fatal(err)
	}

	boot := func(policy, addrname string) (context.CancelFunc, chan error, string) {
		addrfile := filepath.Join(dir, addrname)
		ctx, cancel := context.WithCancel(context.Background())
		var out syncBuffer
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile,
				"-m", "8", "-policy", policy, "-wal-dir", wal, "-snapshot-every", "1"}, &out)
		}()
		return cancel, done, addrfile
	}

	// First life: admit under -policy=semi, snapshot, drain.
	cancel, done, addrfile := boot("semi", "addr1")
	base := "http://" + waitForAddr(t, addrfile)
	if status, err := post(context.Background(), client, base+"/v1/admit", "", body); err != nil || status != http.StatusOK {
		t.Fatalf("admit: status %d, err %v", status, err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first life: %v", err)
	}

	// Rebooting under the default policy must refuse the directory.
	err = run(context.Background(), []string{"-addr", "127.0.0.1:0", "-m", "8", "-wal-dir", wal}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "refusing to reinterpret") {
		t.Fatalf("default-policy reboot over a semi WAL: err = %v, want refusal", err)
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-m", "8",
		"-wal-dir", wal, "-policy", "reservation"}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "refusing to reinterpret") {
		t.Fatalf("reservation reboot over a semi WAL: err = %v, want refusal", err)
	}

	// Same policy recovers the task.
	cancel, done, addrfile = boot("semi", "addr2")
	base = "http://" + waitForAddr(t, addrfile)
	alloc, err := getOK(client, base+"/v1/allocation")
	if err != nil {
		t.Fatalf("allocation after recovery: %v", err)
	}
	var v struct {
		Schedulable bool `json:"schedulable"`
		Tasks       int  `json:"tasks"`
	}
	if err := json.Unmarshal(alloc, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Schedulable || v.Tasks != 1 {
		t.Fatalf("recovered verdict = %s", alloc)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("second life: %v", err)
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/service"
	"fedsched/internal/task"
)

// dumpLines runs -wal-dump and parses its JSONL output.
func dumpLines(t *testing.T, path string) []map[string]any {
	t.Helper()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-wal-dump", path}, &out); err != nil {
		t.Fatalf("-wal-dump %s: %v", path, err)
	}
	var lines []map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if raw == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatalf("-wal-dump line not JSON: %v\n%s", err, raw)
		}
		lines = append(lines, m)
	}
	return lines
}

// TestWALDump drives a durable server through an admit+remove, then dumps
// its WAL three ways — file, shard dir, wal-dir root — and checks each
// record line carries the mutation's op, cluster, trace ID and CRC status.
func TestWALDump(t *testing.T) {
	walDir := t.TempDir()
	svc, err := service.New(service.Config{M: 8, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	tk := task.MustNew("dump-me", dag.Example1(), dag.Example1D, dag.Example1T)
	ctx := context.Background()
	if status, _ := svc.AdmitTrace(ctx, tk, "trace-admit-1", nil); status != 200 {
		t.Fatalf("admit = %d", status)
	}
	if status, _ := svc.RemoveTrace(ctx, "dump-me", "trace-remove-1"); status != 200 {
		t.Fatalf("remove = %d", status)
	}
	svc.Close()

	walFile := filepath.Join(walDir, "shard-0", "wal.log")
	for _, path := range []string{walFile, filepath.Join(walDir, "shard-0"), walDir} {
		lines := dumpLines(t, path)
		if len(lines) != 2 {
			t.Fatalf("dump of %s has %d lines, want 2:\n%v", path, len(lines), lines)
		}
		admit, remove := lines[0], lines[1]
		if admit["op"] != "admit" || admit["trace"] != "trace-admit-1" || admit["crc"] != "ok" {
			t.Errorf("admit line = %v", admit)
		}
		if names, _ := admit["tasks"].([]any); len(names) != 1 || names[0] != "dump-me" {
			t.Errorf("admit line task names = %v", admit["tasks"])
		}
		if remove["op"] != "remove" || remove["name"] != "dump-me" || remove["trace"] != "trace-remove-1" {
			t.Errorf("remove line = %v", remove)
		}
		if admit["seq"].(float64) != 1 || remove["seq"].(float64) != 2 {
			t.Errorf("seqs = %v, %v, want 1, 2", admit["seq"], remove["seq"])
		}
	}
}

// TestWALDumpTornTail appends garbage to a valid WAL and checks the dump
// reports the torn tail without dropping the valid prefix — and that the
// file is left untouched (the dump must be safe on a live shard's log).
func TestWALDumpTornTail(t *testing.T) {
	walDir := t.TempDir()
	svc, err := service.New(service.Config{M: 8, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	tk := task.MustNew("t1", dag.Example1(), dag.Example1D, dag.Example1T)
	if status, _ := svc.Admit(context.Background(), tk); status != 200 {
		t.Fatal("admit failed")
	}
	svc.Close()

	walFile := filepath.Join(walDir, "shard-0", "wal.log")
	f, err := os.OpenFile(walFile, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-mid-append")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(walFile)
	if err != nil {
		t.Fatal(err)
	}

	lines := dumpLines(t, walFile)
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want record + torn report:\n%v", len(lines), lines)
	}
	if lines[0]["crc"] != "ok" || lines[0]["op"] != "admit" {
		t.Errorf("valid prefix not dumped: %v", lines[0])
	}
	if lines[1]["crc"] != "torn" || lines[1]["torn_bytes"].(float64) != float64(len("torn-mid-append")) {
		t.Errorf("torn tail not reported: %v", lines[1])
	}
	after, err := os.Stat(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Errorf("dump changed the WAL size %d → %d; it must be read-only", before.Size(), after.Size())
	}
}

// TestWALDumpErrors pins the failure surface: missing paths, directories
// with no WAL, and files that were never a fedschedd WAL.
func TestWALDumpErrors(t *testing.T) {
	notWAL := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(notWAL, []byte("GARBAGE0 and then some"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		filepath.Join(t.TempDir(), "absent"),
		t.TempDir(), // directory with no wal.log anywhere
		notWAL,
	} {
		if err := run(context.Background(), []string{"-wal-dump", path}, &bytes.Buffer{}); err == nil {
			t.Errorf("-wal-dump %s succeeded, want error", path)
		}
	}
}

// TestObsFlagValidation covers the new observability flags' validation and
// pass-through: bad values are refused, good values reach the service.
func TestObsFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-slo-latency", "-5ms"}, "-slo-latency must be ≥ 0"},
		{[]string{"-slo-window", "-1m"}, "-slo-window must be ≥ 0"},
		{[]string{"-flight-recorder", "lots"}, "invalid value"},
		{[]string{"-flight-sample", "some"}, "invalid value"},
	} {
		err := run(context.Background(), tc.args, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
		}
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fedsched/internal/dag"
	"fedsched/internal/service"
	"fedsched/internal/task"
)

// syncBuffer lets the test read run's output while the daemon goroutine is
// still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForAddr polls the addrfile written by -addrfile until the daemon binds.
func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never wrote its address file")
	return ""
}

// TestServeLifecycle boots the daemon on an ephemeral port, exercises the API
// over real HTTP, and checks that cancelling the signal context drains and
// exits cleanly — the same path a SIGTERM takes in production.
func TestServeLifecycle(t *testing.T) {
	addrfile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile, "-m", "8"}, &out)
	}()

	base := "http://" + waitForAddr(t, addrfile)
	client := &http.Client{Timeout: 5 * time.Second}

	if _, err := getOK(client, base+"/v1/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	tk := task.MustNew("ex1", dag.Example1(), dag.Example1D, dag.Example1T)
	body, err := json.Marshal(tk)
	if err != nil {
		t.Fatal(err)
	}
	status, err := post(ctx, client, base+"/v1/admit", body)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("admit Example 1: status %d", status)
	}

	alloc, err := getOK(client, base+"/v1/allocation")
	if err != nil {
		t.Fatalf("allocation: %v", err)
	}
	var v service.Verdict
	if err := json.Unmarshal(alloc, &v); err != nil {
		t.Fatalf("allocation is not a Verdict: %v", err)
	}
	if !v.Schedulable || v.Tasks != 1 {
		t.Fatalf("unexpected verdict after admit: %s", alloc)
	}

	cancel() // same as delivering SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after context cancel")
	}
	log := out.String()
	for _, want := range []string{"listening on http://", "drained, bye"} {
		if !strings.Contains(log, want) {
			t.Errorf("output missing %q:\n%s", want, log)
		}
	}
}

// TestRunFlagErrors pins the CLI error surface.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-minprocs", "quantum"},         // unknown MINPROCS variant
		{"-partition", "worst-first"},    // unknown heuristic
		{"-m", "0"},                      // invalid platform
		{"-loadgen"},                     // loadgen without -target
		{"extra-positional"},             // stray argument
		{"-addr", "256.0.0.1:bad:extra"}, // unparseable listen address
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestLoadgenSmoke drives an in-process server with the real load generator
// for a fraction of a second and checks the report comes back.
func TestLoadgenSmoke(t *testing.T) {
	svc, err := service.New(service.Config{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-loadgen", "-target", ts.URL, "-duration", "300ms", "-workers", "2", "-seed", "7",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	report := out.String()
	if !strings.Contains(report, "admissions:") || !strings.Contains(report, "admit latency:") {
		t.Fatalf("unexpected loadgen report:\n%s", report)
	}
}

// TestParFlagValidation: the daemon rejects worker-pool sizes below 1 with a
// clear error instead of silently falling back to sequential analysis.
func TestParFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"zero", []string{"-par", "0"}, "-par must be ≥ 1"},
		{"negative", []string{"-par", "-2"}, "-par must be ≥ 1"},
		{"unparseable", []string{"-par", "many"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fedsched/internal/dag"
	"fedsched/internal/service"
	"fedsched/internal/task"
)

// syncBuffer lets the test read run's output while the daemon goroutine is
// still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForAddr polls the addrfile written by -addrfile until the daemon binds.
func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never wrote its address file")
	return ""
}

// TestServeLifecycle boots the daemon on an ephemeral port, exercises the API
// over real HTTP, and checks that cancelling the signal context drains and
// exits cleanly — the same path a SIGTERM takes in production.
func TestServeLifecycle(t *testing.T) {
	addrfile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile, "-m", "8"}, &out)
	}()

	base := "http://" + waitForAddr(t, addrfile)
	client := &http.Client{Timeout: 5 * time.Second}

	if _, err := getOK(client, base+"/v1/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	tk := task.MustNew("ex1", dag.Example1(), dag.Example1D, dag.Example1T)
	body, err := json.Marshal(tk)
	if err != nil {
		t.Fatal(err)
	}
	status, err := post(ctx, client, base+"/v1/admit", "", body)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("admit Example 1: status %d", status)
	}

	alloc, err := getOK(client, base+"/v1/allocation")
	if err != nil {
		t.Fatalf("allocation: %v", err)
	}
	var v service.Verdict
	if err := json.Unmarshal(alloc, &v); err != nil {
		t.Fatalf("allocation is not a Verdict: %v", err)
	}
	if !v.Schedulable || v.Tasks != 1 {
		t.Fatalf("unexpected verdict after admit: %s", alloc)
	}

	cancel() // same as delivering SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after context cancel")
	}
	log := out.String()
	for _, want := range []string{"listening on http://", "drained, bye"} {
		if !strings.Contains(log, want) {
			t.Errorf("output missing %q:\n%s", want, log)
		}
	}
}

// TestRunFlagErrors pins the CLI error surface.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-minprocs", "quantum"},         // unknown MINPROCS variant
		{"-partition", "worst-first"},    // unknown heuristic
		{"-m", "0"},                      // invalid platform
		{"-loadgen"},                     // loadgen without -target
		{"extra-positional"},             // stray argument
		{"-addr", "256.0.0.1:bad:extra"}, // unparseable listen address
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestLoadgenSmoke drives an in-process server with the real load generator
// for a fraction of a second and checks the report comes back.
func TestLoadgenSmoke(t *testing.T) {
	svc, err := service.New(service.Config{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-loadgen", "-target", ts.URL, "-duration", "300ms", "-workers", "2", "-seed", "7",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	report := out.String()
	if !strings.Contains(report, "admissions:") || !strings.Contains(report, "admit latency:") {
		t.Fatalf("unexpected loadgen report:\n%s", report)
	}
}

// TestParFlagValidation: the daemon rejects worker-pool sizes below 1 with a
// clear error instead of silently falling back to sequential analysis.
func TestParFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"zero", []string{"-par", "0"}, "-par must be ≥ 1"},
		{"negative", []string{"-par", "-2"}, "-par must be ≥ 1"},
		{"unparseable", []string{"-par", "many"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestShardFlagValidation mirrors TestParFlagValidation for the sharding and
// durability flags: each bad value is refused before the daemon binds a port.
func TestShardFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"shards-zero", []string{"-shards", "0"}, "-shards must be ≥ 1"},
		{"shards-negative", []string{"-shards", "-4"}, "-shards must be ≥ 1"},
		{"shards-unparseable", []string{"-shards", "lots"}, "invalid value"},
		{"snapshot-negative", []string{"-snapshot-every", "-1"}, "-snapshot-every must be ≥ 0"},
		{"snapshot-without-wal", []string{"-snapshot-every", "64"}, "-snapshot-every requires -wal-dir"},
		{"snapshot-unparseable", []string{"-snapshot-every", "often"}, "invalid value"},
		{"fleet-empty-member", []string{"-fleet", "http://a:8080,,http://b:8080"}, "empty member"},
		{"fleet-self-out-of-range", []string{"-fleet", "http://a:8080,http://b:8080", "-fleet-self", "2"}, "out of range"},
		{"fleet-self-without-fleet", []string{"-fleet-self", "1"}, "-fleet-self requires -fleet"},
		{"clusters-zero", []string{"-loadgen", "-target", "http://x", "-clusters", "0"}, "-clusters must be ≥ 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestShardedServeLifecycle boots a multi-shard durable daemon, admits into
// two clusters, and checks the banner names the topology.
func TestShardedServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrfile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile,
			"-m", "8", "-shards", "4", "-wal-dir", filepath.Join(dir, "wal"), "-snapshot-every", "2"}, &out)
	}()

	base := "http://" + waitForAddr(t, addrfile)
	client := &http.Client{Timeout: 5 * time.Second}
	tk := task.MustNew("ex1", dag.Example1(), dag.Example1D, dag.Example1T)
	body, err := json.Marshal(tk)
	if err != nil {
		t.Fatal(err)
	}
	for _, cluster := range []string{"alpha", "beta"} {
		status, err := post(ctx, client, base+"/v1/clusters/"+cluster+"/admit", "", body)
		if err != nil || status != http.StatusOK {
			t.Fatalf("admit into %s: status %d, err %v", cluster, status, err)
		}
	}
	if _, err := getOK(client, base+"/v1/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if log := out.String(); !strings.Contains(log, "shards=4") || !strings.Contains(log, "wal-dir=") {
		t.Errorf("banner does not name the topology:\n%s", log)
	}
	// The durable layout exists: at least the shards that saw mutations have
	// WALs on disk.
	matches, err := filepath.Glob(filepath.Join(dir, "wal", "shard-*", "wal.log"))
	if err != nil || len(matches) == 0 {
		t.Errorf("no per-shard WALs under -wal-dir: %v (%v)", matches, err)
	}
}

// TestLoadgenClustersAndJSON drives a multi-shard in-process server across
// clusters and checks the -json summary line parses with sane counters.
func TestLoadgenClustersAndJSON(t *testing.T) {
	svc, err := service.New(service.Config{M: 16, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "loadgen.jsonl")
	var out bytes.Buffer
	err = run(context.Background(), []string{
		"-loadgen", "-target", ts.URL, "-duration", "300ms", "-workers", "4",
		"-seed", "7", "-clusters", "4", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if !strings.Contains(out.String(), "over 4 cluster(s)") {
		t.Errorf("report does not name the cluster count:\n%s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum loadgenSummary
	if err := json.Unmarshal(bytes.TrimSpace(data), &sum); err != nil {
		t.Fatalf("-json line not JSON: %v\n%s", err, data)
	}
	if sum.Clusters != 4 || sum.Workers != 4 || sum.Requests < 1 || sum.RequestsPS <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Admits+sum.Rejects+sum.Shed+sum.Timeouts+sum.Others != sum.Requests {
		t.Errorf("status counts do not sum to requests: %+v", sum)
	}
	// The SLO summary is internally consistent: the default 5ms budget is
	// reported, attainment matches the over-budget count, and the error spend
	// reflects the run's sheds/timeouts/errors.
	if sum.SLOLatencyBudgetNs != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("slo budget = %d ns, want the 5ms default", sum.SLOLatencyBudgetNs)
	}
	wantAttain := 1 - float64(sum.SLOLatencyOverBudget)/float64(sum.Requests)
	if diff := sum.SLOLatencyAttainment - wantAttain; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("slo attainment = %v, want %v from %d over budget of %d",
			sum.SLOLatencyAttainment, wantAttain, sum.SLOLatencyOverBudget, sum.Requests)
	}
	wantSpend := (float64(sum.Shed+sum.Timeouts+sum.Others) / float64(sum.Requests)) / 0.001
	if diff := sum.SLOErrorBudgetSpend - wantSpend; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("slo error spend = %v, want %v", sum.SLOErrorBudgetSpend, wantSpend)
	}
	if !strings.Contains(out.String(), "slo:") {
		t.Errorf("human report lacks the slo line:\n%s", out.String())
	}
}

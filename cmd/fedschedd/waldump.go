package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fedsched/internal/store"
)

// walDumpLine is one line of -wal-dump output: a decoded WAL record reduced
// to its provenance fields. Task bodies are elided (a record can carry a
// whole 16 MiB batch); the names and content hashes identify them.
type walDumpLine struct {
	File    string   `json:"file"`
	Seq     uint64   `json:"seq"`
	Op      string   `json:"op"`
	Tasks   []string `json:"tasks,omitempty"` // admitted task names
	Name    string   `json:"name,omitempty"`  // removed task name
	Hashes  []string `json:"hashes,omitempty"`
	Trace   string   `json:"trace,omitempty"`
	Cluster string   `json:"cluster,omitempty"`
	CRC     string   `json:"crc"` // "ok"; torn tails get their own summary line
}

// walDumpTail reports a WAL's torn tail, if any: bytes after the last record
// that fail the length/CRC framing (a crash mid-append, or bit rot).
type walDumpTail struct {
	File      string `json:"file"`
	CRC       string `json:"crc"` // "torn"
	TornBytes int64  `json:"torn_bytes"`
}

// runWALDump prints every record of one or more fedschedd WALs as JSON
// lines, for post-mortem inspection of what the durable log acknowledged —
// including each mutation's trace ID, which links a WAL record back to the
// flight recorder and audit stream. path may be a wal.log file, a shard
// directory containing one, or a -wal-dir root holding shard-*/ directories;
// files are dumped in shard order. The dump is read-only: torn tails are
// reported, never truncated.
func runWALDump(out io.Writer, path string) error {
	files, err := walFiles(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	for _, file := range files {
		recs, torn, err := store.ReadWAL(file)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			line := walDumpLine{
				File:    file,
				Seq:     rec.Seq,
				Op:      rec.Op,
				Name:    rec.Name,
				Hashes:  rec.Hashes,
				Trace:   rec.Trace,
				Cluster: rec.Cluster,
				CRC:     "ok",
			}
			for _, tk := range rec.Tasks {
				line.Tasks = append(line.Tasks, tk.Name)
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		if torn > 0 {
			if err := enc.Encode(walDumpTail{File: file, CRC: "torn", TornBytes: torn}); err != nil {
				return err
			}
		}
	}
	return nil
}

// walFiles resolves the -wal-dump argument to the WAL files it names.
func walFiles(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	// A shard directory holds wal.log directly; a -wal-dir root holds
	// shard-*/wal.log.
	if _, err := os.Stat(filepath.Join(path, "wal.log")); err == nil {
		return []string{filepath.Join(path, "wal.log")}, nil
	}
	matches, err := filepath.Glob(filepath.Join(path, "shard-*", "wal.log"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no wal.log under %s (expected a WAL file, a shard directory, or a -wal-dir root)", path)
	}
	sort.Strings(matches)
	return matches, nil
}

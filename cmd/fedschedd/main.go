// Command fedschedd is the online admission-control daemon for Algorithm
// FEDCONS: a long-running HTTP service that holds a live constrained-deadline
// DAG task system and trial-admits tasks with the full two-phase test,
// backed by a content-addressed cache of Phase-1 MINPROCS analyses.
//
// Usage:
//
//	fedschedd [flags]                 # serve
//	fedschedd -loadgen [flags]        # drive a running instance
//	fedschedd -wal-dump <path>        # print a WAL's records as JSON lines
//
// Endpoints:
//
//	POST   /v1/admit        trial-admit a DAG task (task JSON as produced by
//	                        cmd/taskgen; 200 = installed, 409 = rejected;
//	                        ?trace=1 embeds the FEDCONS decision trace)
//	POST   /v1/admit/batch  trial-admit {"tasks": [...]} atomically: all
//	                        installed or none; cold Phase-1 analyses run on
//	                        the -par worker pool
//	DELETE /v1/tasks/{name} remove an admitted task
//	GET    /v1/allocation   current verdict + allocation (same bytes as
//	                        `fedsched -o json` for the same system)
//	GET    /v1/healthz      liveness
//	GET    /debug/vars      metrics (admits, rejects, cache hit rate,
//	                        admission latency p50/p99/p999, queue depth)
//	GET    /debug/traces    flight recorder: recent decision traces, JSONL
//	GET    /debug/traces/{id}  one retained decision trace by trace ID
//	GET    /metrics         the same metrics in Prometheus text exposition,
//	                        plus fleet sums and SLO burn-rate gauges
//
// Every mutating response carries an X-Trace-Id header; -v logs a one-line
// summary per admission, -audit appends a JSONL audit trail, and -debug-addr
// serves net/http/pprof on a separate listener.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains in-flight
// admissions, and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"fedsched/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fedschedd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fedschedd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrfile     = fs.String("addrfile", "", "write the resolved listen address to this file once bound")
		m            = fs.Int("m", 8, "platform size (identical unit-speed processors)")
		minprocs     = fs.String("minprocs", "ls-scan", "MINPROCS variant: ls-scan (paper) or analytic")
		prio         = fs.String("priority", "insertion", "LS list order: insertion, longest-path, largest-wcet")
		heuristic    = fs.String("partition", "first-fit", "partition heuristic: first-fit (paper), best-fit, worst-fit")
		admission    = fs.String("admission", "dbf-approx", "partition admission test: dbf-approx (paper), edf-exact or dm-rta")
		policy       = fs.String("policy", "fedcons", "admission policy: fedcons (paper), semi, reservation or typed; persisted in snapshots so a shard recovers under the policy it ran")
		mtypesF      = fs.String("m-types", "", "typed platform: per-type processor budgets, e.g. a:4,b:4 (requires -policy=typed; must sum to -m)")
		queue        = fs.Int("queue", 64, "admission queue bound; beyond it requests are shed with 429")
		shards       = fs.Int("shards", 1, "independent admission domains (clusters route to shards by consistent hashing)")
		walDir       = fs.String("wal-dir", "", "if set, make shards durable: WAL + snapshots under this directory, replayed on restart")
		snapEvery    = fs.Int("snapshot-every", 0, "mutations between per-shard snapshots (0 = default cadence; requires -wal-dir)")
		fleet        = fs.String("fleet", "", "comma-separated base URLs of every fleet member; foreign-owned clusters answer 307 to their owner")
		fleetSelf    = fs.Int("fleet-self", 0, "this process's index into -fleet")
		flightSize   = fs.Int("flight-recorder", 0, "per-shard flight-recorder entries for GET /debug/traces (0 = default, negative disables)")
		flightSample = fs.Int("flight-sample", 0, "record a full decision trace for 1 in this many untraced admissions (0 = default, negative disables sampling)")
		sloLatency   = fs.Duration("slo-latency", 0, "admit-latency SLO budget for the burn-rate metrics (0 = default 5ms); loadgen: client-side budget for the SLO summary")
		sloWindow    = fs.Duration("slo-window", 0, "rolling window for the SLO burn-rate metrics (0 = default 1m)")
		walDump      = fs.String("wal-dump", "", "dump the WAL at this path (file, shard dir, or -wal-dir root) as JSON lines and exit")
		par          = fs.Int("par", runtime.GOMAXPROCS(0), "Phase-1 analysis worker pool size for cold (batch) admissions; verdicts are identical for every value")
		admitTimeout = fs.Duration("admit-timeout", 2*time.Second, "per-request admission deadline")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain budget")
		verbose      = fs.Bool("v", false, "log a one-line summary of every admission (trace ID, verdict, latency, cache hit/miss)")
		auditPath    = fs.String("audit", "", "append one JSON line per admission decision to this file")
		debugAddr    = fs.String("debug-addr", "", "if set, serve net/http/pprof on this separate debug listener")
		debugAddrf   = fs.String("debug-addrfile", "", "write the resolved debug listen address to this file once bound")
		loadgen      = fs.Bool("loadgen", false, "run as a closed-loop load generator against -target instead of serving")
		target       = fs.String("target", "", "loadgen: base URL of the fedschedd instance to drive")
		duration     = fs.Duration("duration", 5*time.Second, "loadgen: how long to drive the target")
		workers      = fs.Int("workers", 4, "loadgen: concurrent closed-loop clients")
		seed         = fs.Int64("seed", 1, "loadgen: task-stream seed")
		clusters     = fs.Int("clusters", 1, "loadgen: distinct cluster names to spread admissions over (1 = legacy unclustered)")
		jsonOut      = fs.String("json", "", "loadgen: also append the run's summary as one JSON line to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *par < 1 {
		return fmt.Errorf("-par must be ≥ 1, got %d", *par)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be ≥ 1, got %d", *shards)
	}
	if *snapEvery < 0 {
		return fmt.Errorf("-snapshot-every must be ≥ 0, got %d", *snapEvery)
	}
	if *snapEvery > 0 && *walDir == "" {
		return fmt.Errorf("-snapshot-every requires -wal-dir")
	}
	var fleetURLs []string
	if *fleet != "" {
		for _, u := range strings.Split(*fleet, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				return fmt.Errorf("-fleet has an empty member in %q", *fleet)
			}
			fleetURLs = append(fleetURLs, u)
		}
		if *fleetSelf < 0 || *fleetSelf >= len(fleetURLs) {
			return fmt.Errorf("-fleet-self %d out of range for a %d-member fleet", *fleetSelf, len(fleetURLs))
		}
	} else if *fleetSelf != 0 {
		return fmt.Errorf("-fleet-self requires -fleet")
	}

	if *sloLatency < 0 {
		return fmt.Errorf("-slo-latency must be ≥ 0, got %v", *sloLatency)
	}
	if *sloWindow < 0 {
		return fmt.Errorf("-slo-window must be ≥ 0, got %v", *sloWindow)
	}

	if *walDump != "" {
		return runWALDump(out, *walDump)
	}

	if *loadgen {
		if *clusters < 1 {
			return fmt.Errorf("-clusters must be ≥ 1, got %d", *clusters)
		}
		budget := *sloLatency
		if budget == 0 {
			budget = service.DefaultSLOLatencyBudget
		}
		return runLoadgen(ctx, out, loadgenConfig{
			target:    *target,
			duration:  *duration,
			workers:   *workers,
			seed:      *seed,
			clusters:  *clusters,
			jsonPath:  *jsonOut,
			sloBudget: budget,
		})
	}

	opt, err := service.ParseOptions(*minprocs, *prio, *heuristic, *admission)
	if err != nil {
		return err
	}
	opt.Par = *par
	if opt.Policy, err = service.ParsePolicy(*policy); err != nil {
		return err
	}
	if opt.MTypes, err = service.ParseMTypes(*mtypesF); err != nil {
		return err
	}
	if opt.MTypes != nil && opt.Policy != "typed" {
		return fmt.Errorf("-m-types requires -policy=typed")
	}
	observer, closeAudit, err := buildObserver(out, *verbose, *auditPath)
	if err != nil {
		return err
	}
	defer closeAudit()
	svc, err := service.New(service.Config{
		M:                  *m,
		Options:            opt,
		QueueBound:         *queue,
		AdmitTimeout:       *admitTimeout,
		Observer:           observer,
		Shards:             *shards,
		WALDir:             *walDir,
		SnapshotEvery:      *snapEvery,
		Fleet:              fleetURLs,
		Self:               *fleetSelf,
		FlightRecorderSize: *flightSize,
		FlightSampleEvery:  *flightSample,
		SLOLatencyBudget:   *sloLatency,
		SLOWindow:          *sloWindow,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	if *addrfile != "" {
		if err := os.WriteFile(*addrfile, []byte(resolved), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	durable := ""
	if *walDir != "" {
		durable = " wal-dir=" + *walDir
	}
	// The policy prefix appears only for non-default policies, keeping the
	// default startup line byte-identical to earlier releases.
	variant := fmt.Sprintf("%s/%s/%s/%s", *minprocs, *prio, *heuristic, *admission)
	if opt.Policy != "" {
		variant = opt.Policy + "/" + variant
	}
	fmt.Fprintf(out, "fedschedd: m=%d shards=%d %s%s listening on http://%s\n",
		*m, *shards, variant, durable, resolved)

	stopDebug, err := startDebugServer(out, *debugAddr, *debugAddrf)
	if err != nil {
		ln.Close()
		return err
	}
	defer stopDebug()

	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any shutdown request
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "fedschedd: shutdown requested, draining in-flight admissions")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	svc.Close()
	fmt.Fprintln(out, "fedschedd: drained, bye")
	return nil
}

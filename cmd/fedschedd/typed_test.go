package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

// typedDaemonTask builds a DAG task with per-vertex types for the daemon
// tests: independent vertices, types[i] and wcets[i] per vertex.
func typedDaemonTask(name string, types []int, wcets []task.Time, d, t task.Time) *task.DAGTask {
	b := dag.NewBuilder(len(types))
	for i, ty := range types {
		b.AddTypedVertex("", wcets[i], ty)
	}
	return task.MustNew(name, b.MustBuild(), d, t)
}

// TestTypedFlagValidationDaemon: -m-types demands -policy=typed and a
// well-formed spec, both refused before a port is bound; a typed boot
// announces the policy in the startup banner.
func TestTypedFlagValidationDaemon(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"mtypes-without-typed", []string{"-m-types", "a:8"}, "-m-types requires -policy=typed"},
		{"mtypes-with-semi", []string{"-policy", "semi", "-m-types", "a:8"}, "-m-types requires -policy=typed"},
		{"bad-spec", []string{"-policy", "typed", "-m-types", "a8"}, "want <type>:<count>"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}

	addrfile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile,
			"-m", "8", "-policy", "typed", "-m-types", "a:4,b:4"}, &out)
	}()
	waitForAddr(t, addrfile)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if log := out.String(); !strings.Contains(log, " typed/ls-scan/insertion/first-fit/dbf-approx listening") {
		t.Errorf("banner does not announce the typed policy:\n%s", log)
	}
}

// TestTypedRecoveryByteIdentity pins the durability contract of the typed
// policy: a WAL directory written under -policy=typed with per-type budgets
// recovers to a byte-identical /v1/allocation under the same flags, and a
// reboot under the default policy refuses the directory.
func TestTypedRecoveryByteIdentity(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "wal")
	client := &http.Client{Timeout: 5 * time.Second}

	// A mixed-type high-density task (needs one processor of each type) and
	// a uniformly type-b low task (partitioned on a type-b shared processor).
	high := typedDaemonTask("ht", []int{0, 0, 1, 1}, []task.Time{3, 3, 3, 3}, 6, 10)
	low := typedDaemonTask("lb", []int{1}, []task.Time{2}, 8, 16)

	boot := func(addrname string) (context.CancelFunc, chan error, string) {
		addrfile := filepath.Join(dir, addrname)
		ctx, cancel := context.WithCancel(context.Background())
		var out syncBuffer
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile,
				"-m", "8", "-policy", "typed", "-m-types", "a:4,b:4",
				"-wal-dir", wal, "-snapshot-every", "1"}, &out)
		}()
		return cancel, done, addrfile
	}

	// First life: admit both tasks, record the allocation bytes, drain.
	cancel, done, addrfile := boot("addr1")
	base := "http://" + waitForAddr(t, addrfile)
	for _, tk := range []*task.DAGTask{high, low} {
		body, err := json.Marshal(tk)
		if err != nil {
			t.Fatal(err)
		}
		if status, err := post(context.Background(), client, base+"/v1/admit", "", body); err != nil || status != http.StatusOK {
			t.Fatalf("admit %s: status %d, err %v", tk.Name, status, err)
		}
	}
	before, err := getOK(client, base+"/v1/allocation")
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		Schedulable bool   `json:"schedulable"`
		Policy      string `json:"policy"`
		MTypes      []int  `json:"mtypes"`
	}
	if err := json.Unmarshal(before, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Schedulable || v.Policy != "typed" || len(v.MTypes) != 2 || v.MTypes[0] != 4 || v.MTypes[1] != 4 {
		t.Fatalf("first-life verdict = %s", before)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first life: %v", err)
	}

	// A default-policy reboot must refuse the typed directory.
	err = run(context.Background(), []string{"-addr", "127.0.0.1:0", "-m", "8", "-wal-dir", wal}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "refusing to reinterpret") {
		t.Fatalf("default-policy reboot over a typed WAL: err = %v, want refusal", err)
	}

	// Same flags recover a byte-identical allocation.
	cancel, done, addrfile = boot("addr2")
	base = "http://" + waitForAddr(t, addrfile)
	after, err := getOK(client, base+"/v1/allocation")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("allocation changed across recovery:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("second life: %v", err)
	}
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"fedsched/internal/service"
)

// buildObserver assembles the daemon's admission observer from the -v and
// -audit flags: a one-line human summary per operation, a JSONL audit trail,
// both, or (the default) neither. The returned closer flushes and closes the
// audit file; it is safe to call when no audit file is open.
func buildObserver(out io.Writer, verbose bool, auditPath string) (func(service.AdmissionRecord), func(), error) {
	var audit *os.File
	if auditPath != "" {
		f, err := os.OpenFile(auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("opening audit log: %w", err)
		}
		audit = f
	}
	closer := func() {
		if audit != nil {
			audit.Close()
		}
	}
	if !verbose && audit == nil {
		return nil, closer, nil
	}
	// The observer runs on the admission path (writer loop); serialize the
	// two writers with one mutex so -v lines and audit records never shear.
	var mu sync.Mutex
	obs := func(r service.AdmissionRecord) {
		mu.Lock()
		defer mu.Unlock()
		if verbose {
			verdict := "rejected"
			if r.Schedulable {
				verdict = "installed"
			}
			cache := ""
			if r.Op == "admit" {
				cache = fmt.Sprintf(" cache=%dh/%dm", r.CacheHits, r.CacheMisses)
			}
			fmt.Fprintf(out, "fedschedd: %s %s task=%q status=%d %s latency=%s%s tasks=%d\n",
				r.TraceID, r.Op, r.Task, r.Status, verdict,
				time.Duration(r.LatencyNs).Round(time.Microsecond), cache, r.Tasks)
		}
		if audit != nil {
			rec := struct {
				Time string `json:"time"`
				service.AdmissionRecord
			}{Time: time.Now().UTC().Format(time.RFC3339Nano), AdmissionRecord: r}
			if data, err := json.Marshal(rec); err == nil {
				audit.Write(append(data, '\n'))
			}
		}
	}
	return obs, closer, nil
}

// startDebugServer serves net/http/pprof on its own listener, kept off the
// public API address so profiling endpoints are never exposed by default.
// Returns a stop function (no-op when -debug-addr is unset).
func startDebugServer(out io.Writer, addr, addrfile string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	resolved := ln.Addr().String()
	if addrfile != "" {
		if err := os.WriteFile(addrfile, []byte(resolved), 0o644); err != nil {
			ln.Close()
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Fprintf(out, "fedschedd: pprof debug listener on http://%s/debug/pprof/\n", resolved)
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}, nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func TestExample1DOT(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-example1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph \"example1\"", "->", "rankdir=LR"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// 5 edges in Example 1.
	if got := strings.Count(out, "->"); got != 5 {
		t.Errorf("edge count = %d, want 5", got)
	}
}

func TestSystemFileDOT(t *testing.T) {
	data, err := task.EncodeSystem(&task.SystemFile{
		Processors: 2,
		Tasks: task.System{
			task.MustNew("alpha", dag.Chain(1, 2), 5, 9),
			task.MustNew("", dag.Singleton(1), 3, 4),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sys.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `digraph "alpha"`) {
		t.Errorf("named task digraph missing:\n%s", out)
	}
	if !strings.Contains(out, `digraph "task1"`) {
		t.Errorf("fallback name missing:\n%s", out)
	}
}

func TestDagvizErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("accepted zero arguments")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "nope.json")}, &bytes.Buffer{}); err == nil {
		t.Error("accepted missing file")
	}
}

// Command dagviz emits Graphviz DOT for the DAGs of a task-system JSON file
// (one digraph per task), or for the paper's Example 1 when run with
// -example1.
//
// Usage:
//
//	dagviz system.json | dot -Tpng > dags.png
//	dagviz -example1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dagviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dagviz", flag.ContinueOnError)
	example1 := fs.Bool("example1", false, "emit the paper's Example 1 DAG and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example1 {
		fmt.Fprint(out, dag.Example1().DOT("example1"))
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file (or -example1)")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	sf, err := task.DecodeSystem(data)
	if err != nil {
		return err
	}
	for i, tk := range sf.Tasks {
		name := tk.Name
		if name == "" {
			name = fmt.Sprintf("task%d", i)
		}
		fmt.Fprint(out, tk.G.DOT(name))
	}
	return nil
}

// Command obssmoke is the end-to-end smoke test of the observability layer,
// run by `make obs-smoke` (and CI). Like servesmoke it drives the real
// fedschedd binary over real HTTP, but it exercises the operational surface:
//
//  1. builds ./cmd/fedschedd into a temp dir,
//  2. starts it with -v, -audit and -debug-addr on ephemeral ports,
//  3. scrapes /metrics and asserts the Prometheus exposition carries the
//     expected counter/gauge/histogram families with correct TYPE lines,
//  4. admits the paper's Example 1 task with ?trace=1 and asserts the verdict
//     embeds a fedcons decision trace and an X-Trace-Id header,
//  5. re-scrapes /metrics and asserts admits_total and the latency histogram
//     advanced,
//  6. forces a traced rejection, fetches the retained decision trace from
//     /debug/traces/{id}, and asserts it is byte-identical to the inline
//     ?trace=1 verdict's trace (writing the /debug/traces listing to
//     $OBSSMOKE_TRACES_OUT for CI artifacts when set),
//  7. fetches a pprof goroutine profile from the separate debug listener,
//  8. asserts the audit log holds one valid JSON record per mutation, the
//     -v output mentions the trace ID, and the rejection appears in the
//     audit trail under the same trace ID,
//  9. sends SIGTERM and asserts a clean drain.
//
// Any failure exits non-zero with a diagnosis on stderr.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fedsched/internal/dag"
	"fedsched/internal/task"
)

func main() {
	if err := smoke(); err != nil {
		fmt.Fprintln(os.Stderr, "obs-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: PASS")
}

func smoke() error {
	tmp, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "fedschedd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fedschedd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building fedschedd: %w", err)
	}

	addrfile := filepath.Join(tmp, "addr")
	debugAddrfile := filepath.Join(tmp, "debugaddr")
	auditPath := filepath.Join(tmp, "audit.jsonl")
	var out bytes.Buffer
	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-addrfile", addrfile,
		"-debug-addr", "127.0.0.1:0", "-debug-addrfile", debugAddrfile,
		"-audit", auditPath, "-v", "-m", "8")
	daemon.Stdout, daemon.Stderr = &out, &out
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting daemon: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill()

	base, err := waitForAddr(addrfile, exited, &out)
	if err != nil {
		return err
	}
	debugBase, err := waitForAddr(debugAddrfile, exited, &out)
	if err != nil {
		return fmt.Errorf("debug listener: %w", err)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	// 3. Fresh /metrics exposition: names, types, zero values.
	page, err := fetch(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	for _, want := range []string{
		"# TYPE fedschedd_admits_total counter",
		"fedschedd_admits_total 0",
		"# TYPE fedschedd_rejects_total counter",
		"# TYPE fedschedd_queue_depth gauge",
		"# TYPE fedschedd_cache_hit_rate gauge",
		"# TYPE fedschedd_admit_latency_seconds histogram",
		`fedschedd_admit_latency_seconds_bucket{le="+Inf"} 0`,
		"fedschedd_admit_latency_seconds_count 0",
	} {
		if !strings.Contains(page, want) {
			return fmt.Errorf("/metrics missing %q; page:\n%s", want, page)
		}
	}

	// 4. Traced admission of Example 1.
	ex1 := task.MustNew("example1", dag.Example1(), dag.Example1D, dag.Example1T)
	body, err := json.Marshal(ex1)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/admit?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("admit: %w", err)
	}
	verdictBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("admit example1: %s: %s", resp.Status, verdictBody)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		return fmt.Errorf("admit response has no X-Trace-Id header")
	}
	var v struct {
		Schedulable bool `json:"schedulable"`
		Trace       []struct {
			Name  string `json:"name"`
			DurNs *int64 `json:"dur_ns"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(verdictBody, &v); err != nil {
		return fmt.Errorf("decoding traced verdict: %w", err)
	}
	if !v.Schedulable {
		return fmt.Errorf("example1 rejected: %s", verdictBody)
	}
	if len(v.Trace) == 0 || v.Trace[0].Name != "fedcons" {
		return fmt.Errorf("?trace=1 verdict carries no fedcons trace: %s", verdictBody)
	}
	if v.Trace[0].DurNs == nil {
		return fmt.Errorf("inline trace lacks phase timings: %s", verdictBody)
	}

	// 5. Counters moved.
	page, err = fetch(client, base+"/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"fedschedd_admits_total 1",
		"fedschedd_admit_latency_seconds_count 1",
		"fedschedd_tasks 1",
	} {
		if !strings.Contains(page, want) {
			return fmt.Errorf("post-admit /metrics missing %q; page:\n%s", want, page)
		}
	}

	// 5b. Flight recorder: force a traced rejection, then retrieve the same
	// decision trace post-hoc from /debug/traces/{id} and assert the trace
	// bytes are identical to the inline ?trace=1 verdict's — the post-mortem
	// view must be exactly what the client saw.
	trijob := func(name string) *task.DAGTask {
		return task.MustNew(name, dag.Independent(5, 5, 5), 5, 5)
	}
	var rejectID string
	var inlineTrace json.RawMessage
	for i := 0; i < 3 && rejectID == ""; i++ {
		body, err := json.Marshal(trijob(fmt.Sprintf("tri%d", i)))
		if err != nil {
			return err
		}
		resp, err := client.Post(base+"/v1/admit?trace=1", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("admit tri%d: %w", i, err)
		}
		rejBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusConflict {
			rejectID = resp.Header.Get("X-Trace-Id")
			var rv struct {
				Trace json.RawMessage `json:"trace"`
			}
			if err := json.Unmarshal(rejBody, &rv); err != nil || len(rv.Trace) == 0 {
				return fmt.Errorf("traced rejection verdict carries no trace: %s", rejBody)
			}
			inlineTrace = rv.Trace
		} else if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("admit tri%d: %s: %s", i, resp.Status, rejBody)
		}
	}
	if rejectID == "" {
		return fmt.Errorf("no admission was rejected on the m=8 platform; cannot exercise the flight recorder")
	}
	entryBody, err := fetch(client, base+"/debug/traces/"+rejectID)
	if err != nil {
		return fmt.Errorf("fetching retained trace %s: %w", rejectID, err)
	}
	var entry struct {
		TraceID string          `json:"trace_id"`
		Op      string          `json:"op"`
		Status  int             `json:"status"`
		Trace   json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(entryBody), &entry); err != nil {
		return fmt.Errorf("retained trace not JSON: %v\n%s", err, entryBody)
	}
	if entry.TraceID != rejectID || entry.Op != "admit" || entry.Status != http.StatusConflict {
		return fmt.Errorf("retained entry fields wrong: %s", entryBody)
	}
	if !bytes.Equal(entry.Trace, inlineTrace) {
		return fmt.Errorf("retained trace differs from the inline ?trace=1 verdict:\nretained: %s\ninline:   %s", entry.Trace, inlineTrace)
	}
	listing, err := fetch(client, base+"/debug/traces")
	if err != nil {
		return fmt.Errorf("listing flight recorder: %w", err)
	}
	if !strings.Contains(listing, rejectID) {
		return fmt.Errorf("/debug/traces listing lacks the rejection %s:\n%s", rejectID, listing)
	}
	if traceSmokeOut := os.Getenv("OBSSMOKE_TRACES_OUT"); traceSmokeOut != "" {
		// CI archives the listing as a build artifact.
		if err := os.WriteFile(traceSmokeOut, []byte(listing), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", traceSmokeOut, err)
		}
	}

	// 6. pprof profile from the separate debug listener.
	prof, err := fetch(client, debugBase+"/debug/pprof/goroutine?debug=1")
	if err != nil {
		return fmt.Errorf("pprof goroutine: %w", err)
	}
	if !strings.Contains(prof, "goroutine profile:") {
		return fmt.Errorf("unexpected pprof payload:\n%.200s", prof)
	}
	// The pprof surface must NOT be on the public listener.
	if resp, err := client.Get(base + "/debug/pprof/goroutine"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return fmt.Errorf("pprof exposed on the public API listener")
		}
	}

	// 7. Audit log + -v line.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("sending SIGTERM: %w", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited with %v; output:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("daemon did not exit within 15s of SIGTERM; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), traceID) {
		return fmt.Errorf("-v output never mentioned trace ID %s; output:\n%s", traceID, out.String())
	}
	auditData, err := os.ReadFile(auditPath)
	if err != nil {
		return fmt.Errorf("reading audit log: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(auditData)), "\n")
	if len(lines) < 2 {
		return fmt.Errorf("audit log has %d records, want the example1 admit plus the trijob decisions:\n%s", len(lines), auditData)
	}
	type auditRecord struct {
		Time        string `json:"time"`
		TraceID     string `json:"trace_id"`
		Op          string `json:"op"`
		Task        string `json:"task"`
		Schedulable bool   `json:"schedulable"`
		LatencyNs   int64  `json:"latency_ns"`
	}
	var rec auditRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		return fmt.Errorf("audit record not JSON: %s", lines[0])
	}
	if rec.TraceID != traceID || rec.Op != "admit" || rec.Task != "example1" || !rec.Schedulable || rec.LatencyNs <= 0 || rec.Time == "" {
		return fmt.Errorf("audit record fields wrong: %s", lines[0])
	}
	// The rejection the flight recorder retained is in the audit trail too,
	// under the same trace ID: one incident, three cross-referenced views
	// (inline verdict, flight recorder, audit log).
	foundReject := false
	for _, line := range lines[1:] {
		var r auditRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return fmt.Errorf("audit record not JSON: %s", line)
		}
		if r.TraceID == rejectID {
			foundReject = true
			if r.Schedulable || r.Op != "admit" {
				return fmt.Errorf("rejection's audit record fields wrong: %s", line)
			}
		}
	}
	if !foundReject {
		return fmt.Errorf("audit log never mentions the rejection %s:\n%s", rejectID, auditData)
	}
	return nil
}

// waitForAddr polls an addrfile until the daemon binds, failing fast if the
// process dies first.
func waitForAddr(path string, exited <-chan error, out *bytes.Buffer) (string, error) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return "", fmt.Errorf("daemon exited before binding: %v; output:\n%s", err, out.String())
		default:
		}
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return "http://" + string(b), nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never wrote %s; output:\n%s", path, out.String())
}

func fetch(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(data), nil
}

// Command perfgate is the continuous perf-regression gate, run by
// `make perf-gate`. It runs the pinned benchmark set:
//
//   - BenchmarkAdmit, BenchmarkRemove, BenchmarkAdmitBatch (internal/service)
//   - BenchmarkSchedulePar (internal/core)
//   - BenchmarkSuiteQuick (the E1–E21 evaluation suite at quick scale)
//
// with -count repetitions, reduces each benchmark to its median ns/op, and
// holds the medians against the committed results/bench_baseline.json. Any
// benchmark more than -threshold (default 25%) slower than its baseline
// fails the gate with exit status 1. Every run — pass or fail — appends one
// JSONL line to results/bench_history.jsonl, the longitudinal record the
// baseline snapshots.
//
// Benchmark numbers only transfer between like machines, so the baseline
// carries a host fingerprint (GOOS/GOARCH/NumCPU). On a host that does not
// match, regressions are reported but the gate exits 0 (advisory mode) —
// pass -strict to fail anyway, e.g. on the dedicated CI runner class the
// baseline was recorded on.
//
// Flags:
//
//	-update     rewrite the baseline from this run's medians (and record a
//	            "baseline update" history entry)
//	-threshold  relative slowdown that fails the gate (default 0.25)
//	-baseline   baseline path (default results/bench_baseline.json)
//	-history    history JSONL path (default results/bench_history.jsonl;
//	            empty disables the append)
//	-count      benchmark repetitions per pinned set (default 5)
//	-benchtime  go test -benchtime for the micro-benchmarks (default 0.3s;
//	            BenchmarkSuiteQuick always runs exactly one iteration)
//	-input      parse an existing `go test -bench` transcript instead of
//	            running the benchmarks (for replaying CI artifacts)
//	-strict     fail on regressions even when the host fingerprint differs
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"fedsched/internal/perfgate"
)

// pinnedSets are the gate's benchmark invocations. Each runs as its own
// `go test` so package-level -benchtime tuning stays independent: the
// micro-benchmarks get repetitions × benchtime, while the quick evaluation
// suite is pinned to one iteration per repetition (one full suite pass is
// the measurement; ramping it adds minutes for no extra signal).
type pinnedSet struct {
	pkg       string
	pattern   string
	benchtime string // empty means the -benchtime flag value
}

var pinnedSets = []pinnedSet{
	{pkg: "./internal/service/", pattern: "^(BenchmarkAdmit|BenchmarkRemove|BenchmarkAdmitBatch)$"},
	// SchedulePar's worker handoff is scheduler-jitter-dominated when workers
	// outnumber CPUs, so it gets a longer pinned benchtime than the service
	// micro-benchmarks to keep its medians inside the gate's threshold.
	{pkg: "./internal/core/", pattern: "^BenchmarkSchedulePar$", benchtime: "1s"},
	{pkg: "./", pattern: "^BenchmarkSuiteQuick$", benchtime: "1x"},
}

func main() {
	update := flag.Bool("update", false, "rewrite the baseline from this run's medians")
	threshold := flag.Float64("threshold", 0.25, "relative slowdown that fails the gate")
	baselinePath := flag.String("baseline", "results/bench_baseline.json", "committed baseline path")
	historyPath := flag.String("history", "results/bench_history.jsonl", "append-only history path (empty disables)")
	count := flag.Int("count", 5, "benchmark repetitions (medians are taken per benchmark)")
	benchtime := flag.String("benchtime", "0.3s", "go test -benchtime for the micro-benchmarks")
	input := flag.String("input", "", "parse this bench transcript instead of running benchmarks")
	strict := flag.Bool("strict", false, "fail on regressions even on a mismatched host")
	flag.Parse()

	samples, err := collect(*input, *count, *benchtime)
	if err != nil {
		fatal(err)
	}
	medians := perfgate.Medians(samples)
	if len(medians) == 0 {
		fatal(fmt.Errorf("no benchmark results collected"))
	}
	host := perfgate.CurrentHost()
	now := time.Now().UTC().Format(time.RFC3339)

	if *update {
		b := perfgate.Baseline{Host: host, Benchmarks: medians}
		if err := b.Write(*baselinePath); err != nil {
			fatal(err)
		}
		appendHistory(*historyPath, perfgate.HistoryEntry{
			Time: now, Host: host, Medians: medians, Pass: true, Note: "baseline update",
		})
		fmt.Printf("perfgate: baseline updated with %d benchmarks → %s\n", len(medians), *baselinePath)
		return
	}

	baseline, err := perfgate.LoadBaseline(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("%v (run `go run ./scripts/perfgate -update` to record one)", err))
	}
	rep := perfgate.Compare(baseline.Benchmarks, medians, *threshold)
	comparable := baseline.Host.Comparable(host)

	for _, d := range rep.Deltas {
		mark := "ok  "
		if d.Ratio > 1+*threshold {
			mark = "FAIL"
		}
		fmt.Printf("%s %-40s %12.0f ns/op  baseline %12.0f  %+6.1f%%\n",
			mark, d.Name, d.CurNs, d.BaseNs, (d.Ratio-1)*100)
	}
	for _, name := range rep.Missing {
		fmt.Printf("MISS %-40s in baseline but not in this run\n", name)
	}
	for _, name := range rep.New {
		fmt.Printf("new  %-40s not in baseline (rerun with -update to adopt)\n", name)
	}

	pass := len(rep.Regressions) == 0 && len(rep.Missing) == 0
	enforced := comparable || *strict
	// On a mismatched host the entry records why the comparison was only
	// advisory; without the note a downgraded regression is indistinguishable
	// from a clean pass when reading the history later.
	appendHistory(*historyPath, perfgate.HistoryEntry{
		Time: now, Host: host, Medians: medians,
		WorstRatio: rep.WorstRatio(), Pass: pass || !enforced,
		Note: baseline.Host.MismatchReason(host),
	})

	switch {
	case pass:
		fmt.Printf("perfgate: %d benchmarks within %.0f%% of baseline\n", len(rep.Deltas), *threshold*100)
	case !enforced:
		fmt.Printf("perfgate: %d regression(s)/%d missing on a non-matching host (baseline %s/%s/%d CPUs); advisory only\n",
			len(rep.Regressions), len(rep.Missing), baseline.Host.GOOS, baseline.Host.GOARCH, baseline.Host.NumCPU)
	default:
		fatal(fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%, %d missing from the run",
			len(rep.Regressions), *threshold*100, len(rep.Missing)))
	}
}

// collect gathers benchmark samples: from a transcript file with -input, or
// by running every pinned set -count times in one go test invocation each.
func collect(input string, count int, benchtime string) ([]perfgate.Sample, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return perfgate.ParseBench(f)
	}
	var all []perfgate.Sample
	for _, set := range pinnedSets {
		bt := benchtime
		if set.benchtime != "" {
			bt = set.benchtime
		}
		args := []string{"test", "-run", "^$", "-bench", set.pattern,
			"-count", fmt.Sprint(count), "-benchtime", bt, "-timeout", "20m", set.pkg}
		fmt.Printf("perfgate: go %s\n", joinArgs(args))
		cmd := exec.Command("go", args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("benchmarking %s: %v\n%s", set.pkg, err, out.String())
		}
		samples, err := perfgate.ParseBench(&out)
		if err != nil {
			return nil, err
		}
		all = append(all, samples...)
	}
	return all, nil
}

func joinArgs(args []string) string {
	var b bytes.Buffer
	for i, a := range args {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a)
	}
	return b.String()
}

func appendHistory(path string, e perfgate.HistoryEntry) {
	if path == "" {
		return
	}
	if err := perfgate.AppendHistory(path, e); err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: appending history: %v\n", err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
	os.Exit(1)
}

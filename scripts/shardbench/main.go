// Command shardbench measures the sharded fedschedd's shared-nothing scaling,
// run by `make shard-bench`. For each shard count N in its sweep it:
//
//  1. builds ./cmd/fedschedd once into a temp dir,
//  2. boots it with -shards N on an ephemeral port,
//  3. drives it with the daemon's own closed-loop load generator
//     (-loadgen -clusters 2N, so every shard owns live clusters) and
//     collects the generator's -json summary,
//  4. SIGTERMs the daemon and asserts a clean drain,
//
// then writes all runs to results/timing_shards.json: admissions/sec,
// requests/sec and admit-latency quantiles per shard count. Because shards
// are shared-nothing — each with its own writer loop, queue and cache —
// admissions/sec should grow with N until the client side or the machine
// saturates.
//
// Flags: -duration per run (default 3s), -workers per run (default
// 2×GOMAXPROCS, split across clusters), -shards comma list (default 1,4,8),
// -o output path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// runResult is one sweep point in results/timing_shards.json.
type runResult struct {
	Shards      int     `json:"shards"`
	Clusters    int     `json:"clusters"`
	Workers     int     `json:"workers"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	RequestsPS  float64 `json:"requests_per_s"`
	Admits      int64   `json:"admits"`
	AdmitsPS    float64 `json:"admits_per_s"`
	Rejects     int64   `json:"rejects"`
	Shed        int64   `json:"shed"`
	Timeouts    int64   `json:"timeouts"`
	AdmitP50Ns  int64   `json:"admit_p50_ns"`
	AdmitP99Ns  int64   `json:"admit_p99_ns"`
	AdmitP999Ns int64   `json:"admit_p999_ns"`

	SLOLatencyBudgetNs   int64   `json:"slo_latency_budget_ns"`
	SLOLatencyAttainment float64 `json:"slo_latency_attainment"`
	SLOErrorBudgetSpend  float64 `json:"slo_error_budget_spend"`
}

// loadgenSummary mirrors the -json line cmd/fedschedd's load generator emits.
type loadgenSummary struct {
	Workers     int     `json:"workers"`
	Clusters    int     `json:"clusters"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	RequestsPS  float64 `json:"requests_per_s"`
	Admits      int64   `json:"admits"`
	AdmitsPS    float64 `json:"admits_per_s"`
	Rejects     int64   `json:"rejects"`
	Shed        int64   `json:"shed"`
	Timeouts    int64   `json:"timeouts"`
	AdmitP50Ns  int64   `json:"admit_p50_ns"`
	AdmitP99Ns  int64   `json:"admit_p99_ns"`
	AdmitP999Ns int64   `json:"admit_p999_ns"`

	SLOLatencyBudgetNs   int64   `json:"slo_latency_budget_ns"`
	SLOLatencyAttainment float64 `json:"slo_latency_attainment"`
	SLOErrorBudgetSpend  float64 `json:"slo_error_budget_spend"`
}

func main() {
	duration := flag.Duration("duration", 3*time.Second, "load duration per shard count")
	workers := flag.Int("workers", 2*runtime.GOMAXPROCS(0), "closed-loop clients per run")
	shardList := flag.String("shards", "1,4,8", "comma-separated shard counts to sweep")
	out := flag.String("o", filepath.Join("results", "timing_shards.json"), "output path")
	flag.Parse()

	if err := bench(*duration, *workers, *shardList, *out); err != nil {
		fmt.Fprintln(os.Stderr, "shard-bench: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("shard-bench: PASS")
}

func bench(duration time.Duration, workers int, shardList, outPath string) error {
	var sweep []int
	for _, s := range strings.Split(shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shards entry %q", s)
		}
		sweep = append(sweep, n)
	}

	tmp, err := os.MkdirTemp("", "shardbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "fedschedd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fedschedd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building fedschedd: %w", err)
	}

	var results []runResult
	for _, n := range sweep {
		res, err := runOne(bin, tmp, n, workers, duration)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
		results = append(results, res)
		fmt.Printf("shards=%d clusters=%d: %.1f req/s, %.1f admits/s, p50=%v p99=%v, slo=%.2f%%\n",
			res.Shards, res.Clusters, res.RequestsPS, res.AdmitsPS,
			time.Duration(res.AdmitP50Ns), time.Duration(res.AdmitP99Ns),
			res.SLOLatencyAttainment*100)
	}

	if err := os.MkdirAll(filepath.Dir(outPath), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}

// runOne boots a daemon with n shards, drives it, drains it, and returns the
// measured point.
func runOne(bin, tmp string, n, workers int, duration time.Duration) (runResult, error) {
	var zero runResult
	addrfile := filepath.Join(tmp, fmt.Sprintf("addr-%d", n))
	var out bytes.Buffer
	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-addrfile", addrfile,
		"-m", "16", "-shards", strconv.Itoa(n))
	daemon.Stdout, daemon.Stderr = &out, &out
	if err := daemon.Start(); err != nil {
		return zero, fmt.Errorf("starting daemon: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill()

	base, err := waitForAddr(addrfile, exited, &out)
	if err != nil {
		return zero, err
	}

	clusters := 2 * n
	if workers < clusters {
		workers = clusters // every cluster gets at least one worker
	}
	jsonPath := filepath.Join(tmp, fmt.Sprintf("loadgen-%d.jsonl", n))
	lg := exec.Command(bin, "-loadgen", "-target", base,
		"-duration", duration.String(), "-workers", strconv.Itoa(workers),
		"-clusters", strconv.Itoa(clusters), "-seed", "1", "-json", jsonPath)
	var lgOut bytes.Buffer
	lg.Stdout, lg.Stderr = &lgOut, &lgOut
	if err := lg.Run(); err != nil {
		return zero, fmt.Errorf("loadgen: %w\n%s", err, lgOut.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		return zero, fmt.Errorf("loadgen wrote no summary: %w", err)
	}
	var sum loadgenSummary
	if err := json.Unmarshal(bytes.TrimSpace(data), &sum); err != nil {
		return zero, fmt.Errorf("decoding loadgen summary: %w\n%s", err, data)
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return zero, fmt.Errorf("SIGTERM: %w", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			return zero, fmt.Errorf("daemon exited with %v; output:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		return zero, fmt.Errorf("daemon did not drain; output:\n%s", out.String())
	}

	return runResult{
		Shards:      n,
		Clusters:    sum.Clusters,
		Workers:     sum.Workers,
		DurationS:   sum.DurationS,
		Requests:    sum.Requests,
		RequestsPS:  sum.RequestsPS,
		Admits:      sum.Admits,
		AdmitsPS:    sum.AdmitsPS,
		Rejects:     sum.Rejects,
		Shed:        sum.Shed,
		Timeouts:    sum.Timeouts,
		AdmitP50Ns:  sum.AdmitP50Ns,
		AdmitP99Ns:  sum.AdmitP99Ns,
		AdmitP999Ns: sum.AdmitP999Ns,

		SLOLatencyBudgetNs:   sum.SLOLatencyBudgetNs,
		SLOLatencyAttainment: sum.SLOLatencyAttainment,
		SLOErrorBudgetSpend:  sum.SLOErrorBudgetSpend,
	}, nil
}

// waitForAddr polls the -addrfile until the daemon binds, failing fast if the
// process dies first.
func waitForAddr(path string, exited <-chan error, out *bytes.Buffer) (string, error) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return "", fmt.Errorf("daemon exited before binding: %v; output:\n%s", err, out.String())
		default:
		}
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return "http://" + string(b), nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never wrote %s; output:\n%s", path, out.String())
}

// Command servesmoke is the end-to-end smoke test for the fedschedd daemon,
// run by `make serve-smoke` (and CI). It exercises the real binary over real
// HTTP, not httptest:
//
//  1. builds ./cmd/fedschedd into a temp dir,
//  2. starts it on an ephemeral port (-addr 127.0.0.1:0 -addrfile),
//  3. waits for /v1/healthz,
//  4. admits the paper's Example 1 task and asserts it is accepted,
//  5. admits a 3-wide high-density task and asserts Phase 1 grants it
//     exactly 3 dedicated processors (Example 1 itself is low-density —
//     δ = 9/16 — so it can never receive a dedicated grant),
//  6. batch-admits two further low-density tasks atomically via
//     POST /v1/admit/batch and asserts both are installed,
//  7. batch-admits an infeasible pair (two more 3-wide tasks against the
//     5 remaining processors) and asserts the 409 leaves the installed
//     system untouched — the all-or-nothing contract,
//  8. sends SIGTERM and asserts a clean drain and exit code 0.
//
// It then runs the crash-recovery smoke: boots the daemon with -wal-dir,
// admits a mixed system, captures /v1/allocation, SIGKILLs the process (no
// drain, no snapshot), post-mortems the dead daemon's log with
// `fedschedd -wal-dump`, restarts it on the same -wal-dir, and asserts the
// recovered allocation is byte-identical and the Phase-1 cache came back
// warm (cache_hits > 0 before any new request). Finally it boots a
// never-crashed twin on a fresh -wal-dir, replays the same history, and
// asserts the next low-density admission — served by the recovered daemon's
// rebuilt incremental Phase-2 state — returns byte-identical verdict and
// allocation bodies on both daemons.
//
// Any failure exits non-zero with a diagnosis on stderr.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"fedsched/internal/dag"
	"fedsched/internal/service"
	"fedsched/internal/task"
)

func main() {
	if err := smoke(); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: PASS")
	if err := crashRecoverySmoke(); err != nil {
		fmt.Fprintln(os.Stderr, "crash-recovery-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("crash-recovery-smoke: PASS")
	if err := policySmoke(); err != nil {
		fmt.Fprintln(os.Stderr, "policy-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("policy-smoke: PASS")
	if err := typedSmoke(); err != nil {
		fmt.Fprintln(os.Stderr, "typed-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("typed-smoke: PASS")
}

func smoke() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "fedschedd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fedschedd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building fedschedd: %w", err)
	}

	addrfile := filepath.Join(tmp, "addr")
	var out bytes.Buffer
	daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-addrfile", addrfile, "-m", "8")
	daemon.Stdout, daemon.Stderr = &out, &out
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting daemon: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill()

	base, err := waitForAddr(addrfile, exited, &out)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}

	if err := get(client, base+"/v1/healthz"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// The paper's Example 1 task: low-density (δ = 9/16), accepted into the
	// shared partition.
	ex1 := task.MustNew("example1", dag.Example1(), dag.Example1D, dag.Example1T)
	v, err := admit(client, base, ex1)
	if err != nil {
		return fmt.Errorf("admit example1: %w", err)
	}
	if !v.Schedulable {
		return fmt.Errorf("example1 rejected: %s", v.Reason)
	}

	// Three independent 5-unit jobs with D = T = 5: δ = 3, and MINPROCS needs
	// all three processors — the asserted Phase-1 grant.
	tri := task.MustNew("trijob", dag.Independent(5, 5, 5), 5, 5)
	v, err = admit(client, base, tri)
	if err != nil {
		return fmt.Errorf("admit trijob: %w", err)
	}
	if !v.Schedulable {
		return fmt.Errorf("trijob rejected: %s", v.Reason)
	}
	granted := -1
	for _, h := range v.High {
		if h.Task == "trijob" {
			granted = len(h.Procs)
		}
	}
	if granted != 3 {
		return fmt.Errorf("trijob got %d dedicated processors, want 3; verdict: %+v", granted, v)
	}

	// Batch admission: two more low-density tasks, all-or-nothing. Both fit
	// on the shared partition next to example1.
	v, status, err := admitBatch(client, base,
		task.MustNew("batch-a", dag.Example1(), dag.Example1D, dag.Example1T),
		task.MustNew("batch-b", dag.Example1(), dag.Example1D, dag.Example1T))
	if err != nil {
		return fmt.Errorf("batch admit: %w", err)
	}
	if status != http.StatusOK || !v.Schedulable || v.Tasks != 4 {
		return fmt.Errorf("batch admit: status %d, verdict %+v; want 200 with 4 tasks", status, v)
	}

	// Atomic rejection: two more 3-wide tasks need 6 dedicated processors
	// but only 5 remain, so the whole batch must bounce with 409 and leave
	// the 4 installed tasks untouched.
	v, status, err = admitBatch(client, base,
		task.MustNew("trijob2", dag.Independent(5, 5, 5), 5, 5),
		task.MustNew("trijob3", dag.Independent(5, 5, 5), 5, 5))
	if err != nil {
		return fmt.Errorf("infeasible batch: %w", err)
	}
	if status != http.StatusConflict || v.Schedulable {
		return fmt.Errorf("infeasible batch: status %d, verdict %+v; want 409 unschedulable", status, v)
	}
	var after service.Verdict
	if err := getJSON(client, base+"/v1/allocation", &after); err != nil {
		return fmt.Errorf("allocation after batch reject: %w", err)
	}
	if !after.Schedulable || after.Tasks != 4 {
		return fmt.Errorf("batch rejection mutated the system: %+v", after)
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("sending SIGTERM: %w", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited with %v; output:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("daemon did not exit within 15s of SIGTERM; output:\n%s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("drained, bye")) {
		return fmt.Errorf("daemon did not report a clean drain; output:\n%s", out.String())
	}
	return nil
}

// crashRecoverySmoke is the kill -9 durability check: a daemon with -wal-dir
// must restart into the exact pre-crash state with a warm Phase-1 cache.
func crashRecoverySmoke() error {
	tmp, err := os.MkdirTemp("", "crashsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "fedschedd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fedschedd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building fedschedd: %w", err)
	}
	walDir := filepath.Join(tmp, "wal")
	client := &http.Client{Timeout: 5 * time.Second}

	boot := func(tag, dir string) (*exec.Cmd, chan error, string, *bytes.Buffer, error) {
		addrfile := filepath.Join(tmp, "addr-"+tag)
		var out bytes.Buffer
		daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-addrfile", addrfile,
			"-m", "8", "-wal-dir", dir, "-snapshot-every", "2")
		daemon.Stdout, daemon.Stderr = &out, &out
		if err := daemon.Start(); err != nil {
			return nil, nil, "", nil, fmt.Errorf("starting daemon (%s): %w", tag, err)
		}
		exited := make(chan error, 1)
		go func() { exited <- daemon.Wait() }()
		base, err := waitForAddr(addrfile, exited, &out)
		if err != nil {
			daemon.Process.Kill()
			return nil, nil, "", nil, err
		}
		return daemon, exited, base, &out, nil
	}

	daemon, exited, base, out, err := boot("pre-crash", walDir)
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	// A mixed durable history: a low-density task plus two content-identical
	// high-density tasks (the second trijob is the recovery cache hit we
	// assert below), a removal so replay covers both record kinds. feed
	// drives the same history into any daemon, so the never-crashed twin
	// below sees exactly what the crashed one did.
	feed := func(base string) error {
		for _, tk := range []*task.DAGTask{
			task.MustNew("example1", dag.Example1(), dag.Example1D, dag.Example1T),
			task.MustNew("tri-a", dag.Independent(5, 5, 5), 5, 5),
			task.MustNew("tri-b", dag.Independent(5, 5, 5), 5, 5),
			task.MustNew("doomed", dag.Example1(), dag.Example1D, dag.Example1T),
		} {
			if v, err := admit(client, base, tk); err != nil || !v.Schedulable {
				return fmt.Errorf("admit %s: err=%v verdict=%+v", tk.Name, err, v)
			}
		}
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/tasks/doomed", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("remove doomed: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("remove doomed: %s", resp.Status)
		}
		return nil
	}
	if err := feed(base); err != nil {
		return err
	}
	before, err := getBody(client, base+"/v1/allocation")
	if err != nil {
		return err
	}

	// kill -9: no drain, no snapshot flush — recovery must come purely from
	// the fsynced WAL (plus any snapshot the cadence already wrote).
	if err := daemon.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	<-exited

	// Post-mortem before the restart: -wal-dump reads the dead daemon's log.
	// At -snapshot-every 2 the cadence snapshotted through seq 4 and reset
	// the WAL, so exactly the final removal is on the log — carrying its op,
	// task name, trace ID and a clean CRC.
	var dump bytes.Buffer
	dumpCmd := exec.Command(bin, "-wal-dump", walDir)
	dumpCmd.Stdout, dumpCmd.Stderr = &dump, &dump
	if err := dumpCmd.Run(); err != nil {
		return fmt.Errorf("-wal-dump after crash: %w\n%s", err, dump.String())
	}
	dumpLines := strings.Split(strings.TrimSpace(dump.String()), "\n")
	if len(dumpLines) != 1 {
		return fmt.Errorf("-wal-dump printed %d lines, want 1 (post-snapshot removal):\n%s", len(dumpLines), dump.String())
	}
	var dumped struct {
		Seq   uint64 `json:"seq"`
		Op    string `json:"op"`
		Name  string `json:"name"`
		Trace string `json:"trace"`
		CRC   string `json:"crc"`
	}
	if err := json.Unmarshal([]byte(dumpLines[0]), &dumped); err != nil {
		return fmt.Errorf("-wal-dump line not JSON: %v\n%s", err, dumpLines[0])
	}
	if dumped.Seq != 5 || dumped.Op != "remove" || dumped.Name != "doomed" || dumped.Trace == "" || dumped.CRC != "ok" {
		return fmt.Errorf("-wal-dump record fields wrong: %s", dumpLines[0])
	}

	daemon2, _, base2, out2, err := boot("post-crash", walDir)
	if err != nil {
		return fmt.Errorf("restart after crash: %w (first boot output:\n%s)", err, out.String())
	}
	defer daemon2.Process.Kill()

	after, err := getBody(client, base2+"/v1/allocation")
	if err != nil {
		return fmt.Errorf("allocation after restart: %w (output:\n%s)", err, out2.String())
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("allocation changed across kill -9 + restart:\n--- before ---\n%s--- after ---\n%s", before, after)
	}

	// The recovery replay re-analyzed tri-a and tri-b (identical content):
	// the second one must have hit the memo the first one warmed, before any
	// client traffic.
	var vars struct {
		CacheHits    int64 `json:"cache_hits"`
		CacheEntries int64 `json:"cache_entries"`
		WALSeq       int64 `json:"wal_seq"`
	}
	if err := getJSON(client, base2+"/debug/vars", &vars); err != nil {
		return fmt.Errorf("vars after restart: %w", err)
	}
	if vars.CacheHits < 1 || vars.CacheEntries < 1 {
		return fmt.Errorf("recovery did not prewarm the Phase-1 cache: hits=%d entries=%d", vars.CacheHits, vars.CacheEntries)
	}
	if vars.WALSeq != 5 {
		return fmt.Errorf("recovered wal_seq = %d, want 5 (4 admits + 1 remove)", vars.WALSeq)
	}

	// Recovery also rebuilt the incremental Phase-2 partition state. The next
	// low-density admission rides it — and must be byte-identical to a
	// never-crashed twin daemon fed the same history.
	twin, _, baseTwin, outTwin, err := boot("twin", filepath.Join(tmp, "wal-twin"))
	if err != nil {
		return fmt.Errorf("booting never-crashed twin: %w", err)
	}
	defer twin.Process.Kill()
	if err := feed(baseTwin); err != nil {
		return fmt.Errorf("replaying history into twin: %w (output:\n%s)", err, outTwin.String())
	}
	postLow := func() *task.DAGTask {
		return task.MustNew("post-crash-low", dag.Example1(), dag.Example1D, dag.Example1T)
	}
	s1, b1, err := admitRaw(client, base2, postLow())
	if err != nil {
		return fmt.Errorf("post-crash warm admit: %w", err)
	}
	s2, b2, err := admitRaw(client, baseTwin, postLow())
	if err != nil {
		return fmt.Errorf("twin warm admit: %w", err)
	}
	if s1 != http.StatusOK || s2 != http.StatusOK || !bytes.Equal(b1, b2) {
		return fmt.Errorf("warm admission after recovery diverged from twin (%d vs %d):\n--- recovered ---\n%s--- twin ---\n%s", s1, s2, b1, b2)
	}
	allocRec, err := getBody(client, base2+"/v1/allocation")
	if err != nil {
		return err
	}
	allocTwin, err := getBody(client, baseTwin+"/v1/allocation")
	if err != nil {
		return err
	}
	if !bytes.Equal(allocRec, allocTwin) {
		return fmt.Errorf("allocation after warm admission diverged from twin:\n--- recovered ---\n%s--- twin ---\n%s", allocRec, allocTwin)
	}
	twin.Process.Kill()
	daemon2.Process.Kill()
	return nil
}

// policySmoke is the -policy=semi durability pass: a daemon running the
// semi-federated policy admits a system whose high-density tasks take
// fractional grants (one dedicated processor plus a reservation server each,
// where strict FEDCONS would round up to two whole processors), survives
// kill -9 with a byte-identical allocation, refuses to reboot under a
// different policy (the snapshot header pins it), and serves warm admissions
// byte-identical to a never-crashed twin.
func policySmoke() error {
	tmp, err := os.MkdirTemp("", "policysmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "fedschedd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fedschedd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building fedschedd: %w", err)
	}
	walDir := filepath.Join(tmp, "wal")
	client := &http.Client{Timeout: 5 * time.Second}

	boot := func(tag, dir, policy string) (*exec.Cmd, chan error, string, *bytes.Buffer, error) {
		addrfile := filepath.Join(tmp, "addr-"+tag)
		var out bytes.Buffer
		args := []string{"-addr", "127.0.0.1:0", "-addrfile", addrfile,
			"-m", "8", "-wal-dir", dir, "-snapshot-every", "2"}
		if policy != "" {
			args = append(args, "-policy", policy)
		}
		daemon := exec.Command(bin, args...)
		daemon.Stdout, daemon.Stderr = &out, &out
		if err := daemon.Start(); err != nil {
			return nil, nil, "", nil, fmt.Errorf("starting daemon (%s): %w", tag, err)
		}
		exited := make(chan error, 1)
		go func() { exited <- daemon.Wait() }()
		base, err := waitForAddr(addrfile, exited, &out)
		if err != nil {
			daemon.Process.Kill()
			return nil, nil, "", nil, err
		}
		return daemon, exited, base, &out, nil
	}

	// splitTask is high-density with vol=7 > window=6 > len=4: the semi
	// policy grants it ⌈(7−6)/(6−4)⌉ = 1 dedicated processor plus a server
	// of budget 7 − 1·(6−4) = 5, where strict FEDCONS dedicates 2 whole
	// processors.
	splitTask := func(name string) *task.DAGTask {
		return task.MustNew(name, dag.Independent(4, 3), 6, 6)
	}
	feed := func(base string) error {
		for _, tk := range []*task.DAGTask{
			task.MustNew("example1", dag.Example1(), dag.Example1D, dag.Example1T),
			splitTask("split-a"),
			splitTask("split-b"),
			task.MustNew("doomed", dag.Example1(), dag.Example1D, dag.Example1T),
		} {
			if v, err := admit(client, base, tk); err != nil || !v.Schedulable {
				return fmt.Errorf("admit %s: err=%v verdict=%+v", tk.Name, err, v)
			}
		}
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/tasks/doomed", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("remove doomed: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("remove doomed: %s", resp.Status)
		}
		return nil
	}

	daemon, exited, base, out, err := boot("pre-crash", walDir, "semi")
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()
	if err := feed(base); err != nil {
		return err
	}

	// The installed allocation must carry the fractional shape: the semi
	// policy tag and one budget-5 server per split task.
	var v service.Verdict
	if err := getJSON(client, base+"/v1/allocation", &v); err != nil {
		return err
	}
	if v.Policy != "semi" {
		return fmt.Errorf("allocation policy = %q, want semi: %+v", v.Policy, v)
	}
	servers := map[string]task.Time{}
	for _, sv := range v.Servers {
		servers[sv.Task] = sv.Budget
	}
	if servers["split-a#srv0"] != 5 || servers["split-b#srv0"] != 5 {
		return fmt.Errorf("expected budget-5 servers for split-a and split-b, got %+v", v.Servers)
	}

	before, err := getBody(client, base+"/v1/allocation")
	if err != nil {
		return err
	}
	if err := daemon.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	<-exited

	// A reboot under a different policy must refuse the directory.
	for _, wrong := range []string{"", "reservation"} {
		mismatch := exec.Command(bin, "-addr", "127.0.0.1:0", "-m", "8", "-wal-dir", walDir)
		if wrong != "" {
			mismatch.Args = append(mismatch.Args, "-policy", wrong)
		}
		var mout bytes.Buffer
		mismatch.Stdout, mismatch.Stderr = &mout, &mout
		if err := mismatch.Run(); err == nil {
			mismatch.Process.Kill()
			return fmt.Errorf("reboot with policy %q over a semi WAL succeeded, want refusal", wrong)
		}
		if !bytes.Contains(mout.Bytes(), []byte("refusing to reinterpret")) {
			return fmt.Errorf("policy-mismatch reboot (%q) failed without the refusal diagnostic:\n%s", wrong, mout.String())
		}
	}

	daemon2, _, base2, out2, err := boot("post-crash", walDir, "semi")
	if err != nil {
		return fmt.Errorf("restart after crash: %w (first boot output:\n%s)", err, out.String())
	}
	defer daemon2.Process.Kill()
	after, err := getBody(client, base2+"/v1/allocation")
	if err != nil {
		return fmt.Errorf("allocation after restart: %w (output:\n%s)", err, out2.String())
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("semi allocation changed across kill -9 + restart:\n--- before ---\n%s--- after ---\n%s", before, after)
	}

	// Warm admissions after recovery must match a never-crashed twin.
	twin, _, baseTwin, outTwin, err := boot("twin", filepath.Join(tmp, "wal-twin"), "semi")
	if err != nil {
		return fmt.Errorf("booting never-crashed twin: %w", err)
	}
	defer twin.Process.Kill()
	if err := feed(baseTwin); err != nil {
		return fmt.Errorf("replaying history into twin: %w (output:\n%s)", err, outTwin.String())
	}
	postLow := func() *task.DAGTask {
		return task.MustNew("post-crash-low", dag.Example1(), dag.Example1D, dag.Example1T)
	}
	s1, b1, err := admitRaw(client, base2, postLow())
	if err != nil {
		return fmt.Errorf("post-crash warm admit: %w", err)
	}
	s2, b2, err := admitRaw(client, baseTwin, postLow())
	if err != nil {
		return fmt.Errorf("twin warm admit: %w", err)
	}
	if s1 != http.StatusOK || s2 != http.StatusOK || !bytes.Equal(b1, b2) {
		return fmt.Errorf("semi warm admission after recovery diverged from twin (%d vs %d):\n--- recovered ---\n%s--- twin ---\n%s", s1, s2, b1, b2)
	}
	twin.Process.Kill()
	daemon2.Process.Kill()
	return nil
}

// typedSmoke is the -policy=typed durability pass: a daemon declaring a
// heterogeneous platform (-m-types a:4,b:4) admits a mixed-type high-density
// task (one dedicated processor from each type block) and a uniformly
// type-b low task over HTTP, survives kill -9 with a byte-identical
// allocation, and refuses to reboot under the default policy (the snapshot
// header pins "typed").
func typedSmoke() error {
	tmp, err := os.MkdirTemp("", "typedsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "fedschedd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fedschedd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building fedschedd: %w", err)
	}
	walDir := filepath.Join(tmp, "wal")
	client := &http.Client{Timeout: 5 * time.Second}

	boot := func(tag string) (*exec.Cmd, chan error, string, *bytes.Buffer, error) {
		addrfile := filepath.Join(tmp, "addr-"+tag)
		var out bytes.Buffer
		daemon := exec.Command(bin, "-addr", "127.0.0.1:0", "-addrfile", addrfile,
			"-m", "8", "-policy", "typed", "-m-types", "a:4,b:4",
			"-wal-dir", walDir, "-snapshot-every", "2")
		daemon.Stdout, daemon.Stderr = &out, &out
		if err := daemon.Start(); err != nil {
			return nil, nil, "", nil, fmt.Errorf("starting daemon (%s): %w", tag, err)
		}
		exited := make(chan error, 1)
		go func() { exited <- daemon.Wait() }()
		base, err := waitForAddr(addrfile, exited, &out)
		if err != nil {
			daemon.Process.Kill()
			return nil, nil, "", nil, err
		}
		return daemon, exited, base, &out, nil
	}

	// typedTask builds an independent-vertex DAG with per-vertex types.
	typedTask := func(name string, types []int, wcets []task.Time, d, t task.Time) *task.DAGTask {
		b := dag.NewBuilder(len(types))
		for i, ty := range types {
			b.AddTypedVertex("", wcets[i], ty)
		}
		return task.MustNew(name, b.MustBuild(), d, t)
	}

	daemon, exited, base, out, err := boot("pre-crash")
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	// A mixed-type high task: per type, vol = 6 fills window min(D,T) = 6 on
	// one processor, so Phase 1 must grant exactly one processor per type —
	// one from the type-a block [0,4) and one from the type-b block [4,8).
	// The low task is uniformly type b, partitioned on a type-b shared
	// processor; "doomed" exercises the removal record kind.
	mixed := typedTask("mixed-high", []int{0, 0, 1, 1}, []task.Time{3, 3, 3, 3}, 6, 10)
	for _, tk := range []*task.DAGTask{
		mixed,
		typedTask("low-b", []int{1}, []task.Time{2}, 8, 16),
		typedTask("doomed", []int{0}, []task.Time{2}, 8, 16),
	} {
		if v, err := admit(client, base, tk); err != nil || !v.Schedulable {
			return fmt.Errorf("admit %s: err=%v verdict=%+v", tk.Name, err, v)
		}
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/tasks/doomed", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("remove doomed: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remove doomed: %s", resp.Status)
	}

	// The installed allocation must carry the typed shape — and the mixed
	// task's grant must actually span both declared type blocks.
	var v service.Verdict
	if err := getJSON(client, base+"/v1/allocation", &v); err != nil {
		return err
	}
	if v.Policy != "typed" || len(v.MTypes) != 2 || v.MTypes[0] != 4 || v.MTypes[1] != 4 {
		return fmt.Errorf("allocation policy/mtypes = %q/%v, want typed/[4 4]: %+v", v.Policy, v.MTypes, v)
	}
	for _, h := range v.High {
		if h.Task != "mixed-high" {
			continue
		}
		if len(h.Procs) != 2 || h.Procs[0] >= 4 || h.Procs[1] < 4 {
			return fmt.Errorf("mixed-high grant %v does not span the type blocks [0,4)+[4,8)", h.Procs)
		}
	}

	before, err := getBody(client, base+"/v1/allocation")
	if err != nil {
		return err
	}
	if err := daemon.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	<-exited

	// A default-policy reboot must refuse the typed directory.
	mismatch := exec.Command(bin, "-addr", "127.0.0.1:0", "-m", "8", "-wal-dir", walDir)
	var mout bytes.Buffer
	mismatch.Stdout, mismatch.Stderr = &mout, &mout
	if err := mismatch.Run(); err == nil {
		mismatch.Process.Kill()
		return fmt.Errorf("default-policy reboot over a typed WAL succeeded, want refusal")
	}
	if !bytes.Contains(mout.Bytes(), []byte("refusing to reinterpret")) {
		return fmt.Errorf("policy-mismatch reboot failed without the refusal diagnostic:\n%s", mout.String())
	}

	daemon2, _, base2, out2, err := boot("post-crash")
	if err != nil {
		return fmt.Errorf("restart after crash: %w (first boot output:\n%s)", err, out.String())
	}
	defer daemon2.Process.Kill()
	after, err := getBody(client, base2+"/v1/allocation")
	if err != nil {
		return fmt.Errorf("allocation after restart: %w (output:\n%s)", err, out2.String())
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("typed allocation changed across kill -9 + restart:\n--- before ---\n%s--- after ---\n%s", before, after)
	}

	// A further typed admission on the recovered daemon re-analyzes in full
	// (the typed policy has no warm path) and must land on a type-b shared
	// processor, keeping the allocation verifiable end to end.
	s, _, err := admitRaw(client, base2, typedTask("post-crash-low", []int{1}, []task.Time{2}, 8, 16))
	if err != nil {
		return fmt.Errorf("post-crash typed admit: %w", err)
	}
	if s != http.StatusOK {
		return fmt.Errorf("post-crash typed admit: status %d, want 200", s)
	}
	daemon2.Process.Kill()
	return nil
}

// admitRaw POSTs tk to /v1/admit and returns the raw status and body bytes
// for byte-level comparison.
func admitRaw(client *http.Client, base string, tk *task.DAGTask) (int, []byte, error) {
	body, err := json.Marshal(tk)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(base+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// getBody GETs url and returns the raw body on 200.
func getBody(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// waitForAddr polls the -addrfile until the daemon binds, failing fast if the
// process dies first.
func waitForAddr(path string, exited <-chan error, out *bytes.Buffer) (string, error) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			return "", fmt.Errorf("daemon exited before binding: %v; output:\n%s", err, out.String())
		default:
		}
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return "http://" + string(b), nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "", fmt.Errorf("daemon never wrote %s; output:\n%s", path, out.String())
}

func get(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return nil
}

// admitBatch POSTs tks to /v1/admit/batch and decodes the verdict (200 and
// 409 both carry one), reporting the status for the caller to assert on.
func admitBatch(client *http.Client, base string, tks ...*task.DAGTask) (service.Verdict, int, error) {
	var v service.Verdict
	body, err := json.Marshal(service.BatchRequest{Tasks: tks})
	if err != nil {
		return v, 0, err
	}
	resp, err := client.Post(base+"/v1/admit/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return v, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return v, resp.StatusCode, fmt.Errorf("POST /v1/admit/batch: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, resp.StatusCode, fmt.Errorf("decoding batch verdict: %w", err)
	}
	return v, resp.StatusCode, nil
}

// getJSON GETs url and decodes the body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// admit POSTs tk and decodes the verdict (200 and 409 both carry one).
func admit(client *http.Client, base string, tk *task.DAGTask) (service.Verdict, error) {
	var v service.Verdict
	body, err := json.Marshal(tk)
	if err != nil {
		return v, err
	}
	resp, err := client.Post(base+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return v, fmt.Errorf("POST /v1/admit: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, fmt.Errorf("decoding verdict: %w", err)
	}
	return v, nil
}

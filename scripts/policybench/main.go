// Command policybench times the three admission policies (-policy=fedcons,
// semi, reservation) on one fixed high-density workload — run by
// `make policy-bench` — and writes the medians to results/timing_policy.json:
//
//   - cold_ns: one complete batch analysis with an empty Phase-1 memo, the
//     cost `fedsched -policy=X` pays per invocation. The split policies pay
//     their fractional sizing plus the combined servers+low partition on top
//     of any strict fallback, so cold deltas bound the policy layer's
//     overhead.
//   - warm_admit_remove_ns: one admit+remove pair of a low-density probe
//     through a live service.Server running the policy — the daemon's
//     steady-state admission cost under that -policy.
//
// Alongside the timings it records what each policy bought on this workload:
// the number of dedicated processors granted, reservation servers created,
// and shared processors left for partitioned tasks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"fedsched/internal/core"
	"fedsched/internal/dag"
	"fedsched/internal/gen"
	"fedsched/internal/service"
	"fedsched/internal/task"
)

// result is one policy's row in results/timing_policy.json.
type result struct {
	Policy          string `json:"policy"`
	M               int    `json:"m"`
	Tasks           int    `json:"tasks"`
	ColdNS          int64  `json:"cold_ns"`
	WarmPairNS      int64  `json:"warm_admit_remove_ns"`
	DedicatedProcs  int    `json:"dedicated_procs"`
	Servers         int    `json:"servers"`
	SharedProcs     int    `json:"shared_procs"`
	SplitAllocation bool   `json:"split_allocation"`
}

func main() {
	out := flag.String("o", filepath.Join("results", "timing_policy.json"), "output path")
	coldReps := flag.Int("cold-reps", 9, "cold analysis repetitions (median reported)")
	warmReps := flag.Int("warm-reps", 25, "warm admit+remove repetitions (median reported)")
	flag.Parse()

	if err := run(*out, *coldReps, *warmReps); err != nil {
		fmt.Fprintln(os.Stderr, "policybench: FAIL:", err)
		os.Exit(1)
	}
}

func run(outPath string, coldReps, warmReps int) error {
	// The bench workload lives where the split shapes engage: E22's regime
	// (deadline-tightened generation, β ∈ [0.25, 0.6], moderate density), at
	// a fixed platform and utilization. The seed is scanned deterministically
	// until the strict algorithm accepts AND both split policies' fractional
	// attempts succeed (alloc.Policy is set), so the warm columns compare a
	// live strict shape against live split shapes rather than fallbacks. The warm probe must also still fit under strict, or the
	// fedcons warm column would measure a rejection.
	const m, n = 16, 20
	probe := task.MustNew("probe", dag.Example1(), dag.Example1D, dag.Example1T)
	var sys task.System
	for seed := int64(0); ; seed++ {
		if seed == 1000 {
			return fmt.Errorf("no seed < 1000 yields a strict-accepted, semi-split workload")
		}
		r := rand.New(rand.NewSource(seed))
		p := gen.DefaultParams(n, 0.45*float64(m))
		p.BetaMin, p.BetaMax = 0.25, 0.6
		p.MinVerts, p.MaxVerts = 80, 150
		cand, err := gen.System(r, p)
		if err != nil {
			return err
		}
		if _, err := core.Schedule(cand, m, core.Options{}); err != nil {
			continue
		}
		if _, err := core.Schedule(append(append(task.System(nil), cand...), probe), m, core.Options{}); err != nil {
			continue
		}
		semi, err := core.Schedule(cand, m, core.Options{Policy: core.PolicySemi})
		if err != nil || semi.Policy != core.PolicySemi {
			continue
		}
		resv, err := core.Schedule(cand, m, core.Options{Policy: core.PolicyReservation})
		if err != nil || resv.Policy != core.PolicyReservation {
			continue
		}
		sys = cand
		fmt.Printf("policybench: workload seed %d (m=%d, n=%d, U/m=0.45)\n", seed, m, n)
		break
	}

	var results []result
	for _, pol := range []string{"", core.PolicySemi, core.PolicyReservation} {
		res, err := benchPolicy(sys, m, pol, coldReps, warmReps)
		if err != nil {
			return fmt.Errorf("policy %s: %w", label(pol), err)
		}
		fmt.Printf("policybench: %-11s cold %8.2fms  warm pair %8.2fµs  dedicated %3d  servers %3d  shared %3d\n",
			label(pol), float64(res.ColdNS)/1e6, float64(res.WarmPairNS)/1e3,
			res.DedicatedProcs, res.Servers, res.SharedProcs)
		results = append(results, res)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(outPath), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("policybench: wrote", outPath)
	return nil
}

func benchPolicy(sys task.System, m int, pol string, coldReps, warmReps int) (result, error) {
	opt := core.Options{Policy: pol}
	res := result{Policy: label(pol), M: m, Tasks: len(sys)}

	// Shape of the accepted allocation.
	alloc, err := core.Schedule(sys, m, opt)
	if err != nil {
		return res, err
	}
	for _, h := range alloc.High {
		res.DedicatedProcs += len(h.Procs)
	}
	res.Servers = len(alloc.Servers)
	res.SharedProcs = len(alloc.SharedProcs)
	res.SplitAllocation = alloc.Policy != ""

	// Cold: a fresh memo per repetition.
	cold := make([]int64, coldReps)
	for i := range cold {
		c := service.NewAnalysisCache()
		start := time.Now()
		if _, err := c.Schedule(sys, m, opt); err != nil {
			return res, err
		}
		cold[i] = time.Since(start).Nanoseconds()
	}
	res.ColdNS = median(cold)

	// Warm: admit+remove pairs against a live seeded server.
	svc, err := service.New(service.Config{M: m, QueueBound: 4, Options: opt})
	if err != nil {
		return res, err
	}
	defer svc.Close()
	ctx := context.Background()
	for i, tk := range sys {
		if status, body := svc.Admit(ctx, tk); status != http.StatusOK {
			return res, fmt.Errorf("seed admit %d: %d %s", i, status, body)
		}
	}
	probe := func() *task.DAGTask {
		return task.MustNew("probe", dag.Example1(), dag.Example1D, dag.Example1T)
	}
	// One untimed round so later pairs hit steady state.
	if status, _ := svc.Admit(ctx, probe()); status != http.StatusOK {
		return res, fmt.Errorf("probe warmup rejected")
	}
	if status, _ := svc.Remove(ctx, "probe"); status != http.StatusOK {
		return res, fmt.Errorf("probe warmup removal failed")
	}
	warm := make([]int64, warmReps)
	for i := range warm {
		start := time.Now()
		if status, body := svc.Admit(ctx, probe()); status != http.StatusOK {
			return res, fmt.Errorf("warm admit: %d %s", status, body)
		}
		if status, _ := svc.Remove(ctx, "probe"); status != http.StatusOK {
			return res, fmt.Errorf("warm remove failed")
		}
		warm[i] = time.Since(start).Nanoseconds()
	}
	res.WarmPairNS = median(warm)
	return res, nil
}

func label(pol string) string {
	if pol == "" {
		return core.PolicyFedcons
	}
	return pol
}

func median(xs []int64) int64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[len(xs)/2]
}

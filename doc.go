// Package fedsched is a Go reproduction of "The federated scheduling of
// constrained-deadline sporadic DAG task systems" (S. Baruah, DATE 2015).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), runnable examples under examples/, and command-line tools
// under cmd/. bench_test.go in this directory hosts one benchmark per
// experiment in the evaluation suite (E1–E21); run them with
//
//	go test -bench=. -benchmem
//
// and regenerate the full result tables with
//
//	go run ./cmd/experiments
package fedsched

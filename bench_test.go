package fedsched

// One benchmark per experiment of the evaluation suite E1–E21 (DESIGN.md §4).
// Each benchmark runs the corresponding experiment end to end at the quick
// configuration and validates its headline invariant, so
//
//	go test -bench=. -benchmem
//
// both times the harness and re-checks every reproduced claim. The full-size
// tables recorded in EXPERIMENTS.md come from `go run ./cmd/experiments`.

import (
	"strings"
	"testing"

	"fedsched/internal/exp"
)

// runExperiment executes one suite entry b.N times, failing the benchmark on
// any error or UNEXPECTED note.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var target exp.Experiment
	for _, e := range exp.Suite() {
		if e.ID == id {
			target = e
			break
		}
	}
	if target.Run == nil {
		b.Fatalf("experiment %s not in suite", id)
	}
	cfg := exp.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := target.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range res.Notes {
			if strings.Contains(n, "UNEXPECTED") {
				b.Fatalf("%s: %s", id, n)
			}
		}
	}
}

// benchmarkSuite runs the whole E1–E21 quick suite once per iteration with
// the sweep engine's worker pool bounded to par (0 = GOMAXPROCS).
func benchmarkSuite(b *testing.B, par int) {
	b.Helper()
	cfg := exp.QuickConfig()
	cfg.Par = par
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range exp.Suite() {
			if _, err := e.Run(cfg); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

// BenchmarkSuiteQuick times the full quick suite with a single sweep worker —
// the sequential reference for the parallel variant below.
func BenchmarkSuiteQuick(b *testing.B) { benchmarkSuite(b, 1) }

// BenchmarkSuiteQuickParallel times the full quick suite with the default
// worker pool (GOMAXPROCS). Output tables are identical to the sequential
// run; only wall clock may differ. results/timing_quick_suite.json records
// a measured pair.
func BenchmarkSuiteQuickParallel(b *testing.B) { benchmarkSuite(b, 0) }

// BenchmarkE1Example1 regenerates the paper's Example 1 quantities
// (len=6, vol=9, δ=9/16, u=9/20).
func BenchmarkE1Example1(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2CapacityAugmentation regenerates Example 2: required processors
// grow as n while U_sum ≤ 1 — no capacity augmentation bound exists.
func BenchmarkE2CapacityAugmentation(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3LSMakespanBound regenerates Lemma 1: LS never exceeds
// len + (vol−len)/m over random DAGs.
func BenchmarkE3LSMakespanBound(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4AcceptanceVsUtil regenerates the paper's schedulability
// experiment: acceptance ratio vs normalized utilization on m=8.
func BenchmarkE4AcceptanceVsUtil(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5AcceptanceVsDeadlineRatio sweeps deadline tightness β.
func BenchmarkE5AcceptanceVsDeadlineRatio(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6BaselineComparison compares FEDCONS with PART-SEQ, LI-FED-D and
// the NECESSARY upper bound.
func BenchmarkE6BaselineComparison(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7MinprocsAblation compares MINPROCS LS scan vs analytic sizing.
func BenchmarkE7MinprocsAblation(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8PartitionAblation compares partition heuristics and admission
// tests on low-density systems.
func BenchmarkE8PartitionAblation(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9Anomaly regenerates Graham's timing anomaly and the
// template-replay defence (footnote 2).
func BenchmarkE9Anomaly(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10SimulationValidation simulates every accepted system under
// release jitter and early completion; zero misses expected.
func BenchmarkE10SimulationValidation(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11Scalability measures FEDCONS analysis cost vs n, |V| and m.
func BenchmarkE11Scalability(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12WeightedSchedVsM computes weighted schedulability vs platform
// size for FEDCONS and the baselines.
func BenchmarkE12WeightedSchedVsM(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13ArbitraryDeadlines exercises the arbitrary-deadline extension
// (the paper's future work), comparing window-based handling with the
// fully-constrained transform.
func BenchmarkE13ArbitraryDeadlines(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14ImplicitComparison compares FEDCONS with the implicit-deadline
// LI-FED algorithm of the paper's reference [17] on implicit workloads.
func BenchmarkE14ImplicitComparison(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15EmpiricalSpeedup measures platform inflation m*/m0 against the
// 3 − 1/m guarantee of Theorem 1.
func BenchmarkE15EmpiricalSpeedup(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16SharedSchedulerAblation compares EDF+DBF* shared processors
// (the paper) with deadline-monotonic + exact RTA.
func BenchmarkE16SharedSchedulerAblation(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE17SustainabilityProbe searches for WCET-reduction sustainability
// violations in MINPROCS (a consequence of Graham's anomaly).
func BenchmarkE17SustainabilityProbe(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkE18LemmaOneVsOptimal measures LS against the exact
// branch-and-bound optimum (the true Lemma 1 ratio).
func BenchmarkE18LemmaOneVsOptimal(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkE19SpeedFactorSearch searches the minimum processor speed FEDCONS
// needs on NECESSARY-feasible systems (the paper's speedup metric, measured).
func BenchmarkE19SpeedFactorSearch(b *testing.B) { runExperiment(b, "E19") }

// BenchmarkE20PartitionOptimality measures first-fit partitioning against
// the exact bin packer on implicit-deadline systems (the §III bottleneck
// remark, quantified).
func BenchmarkE20PartitionOptimality(b *testing.B) { runExperiment(b, "E20") }

// BenchmarkE21GeneratorSensitivity re-measures the acceptance curve across
// workload ensembles (the paper's generator-influence caveat).
func BenchmarkE21GeneratorSensitivity(b *testing.B) { runExperiment(b, "E21") }

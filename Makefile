# fedsched — reproduction of Baruah, DATE 2015.
# Stdlib-only Go; all targets are thin wrappers over the go tool.

GO ?= go

.PHONY: all check build vet test test-short test-race cover bench fuzz fuzz-smoke oracle-race par-race serve-smoke obs-smoke experiments experiments-quick examples clean

all: build vet test

# What CI runs (.github/workflows/ci.yml): vet + build + race-enabled tests,
# the differential oracle under the race detector, a fuzzing smoke pass, an
# end-to-end boot/admit/drain check of the fedschedd daemon, and a smoke test
# of its observability surface (/metrics, pprof, ?trace=1, audit log).
check: vet build test-race oracle-race par-race fuzz-smoke serve-smoke obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One benchmark per evaluation experiment (E1–E21) plus package micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing sessions over the decoders and the QPA cross-check.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshalJSON -fuzztime=30s ./internal/dag/
	$(GO) test -fuzz=FuzzBuilder -fuzztime=30s ./internal/dag/
	$(GO) test -fuzz=FuzzExactVsNaive -fuzztime=30s ./internal/dbf/
	$(GO) test -fuzz=FuzzDBFStar -fuzztime=30s ./internal/dbf/
	$(GO) test -fuzz=FuzzVerifyAllocation -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzTaskHash -fuzztime=30s ./internal/core/

# CI smoke pass over the property fuzz targets (30 s each).
fuzz-smoke:
	$(GO) test -fuzz=FuzzDBFStar -fuzztime=30s ./internal/dbf/
	$(GO) test -fuzz=FuzzVerifyAllocation -fuzztime=30s ./internal/core/

# The fast-vs-reference differential oracle under the race detector.
oracle-race:
	$(GO) test -race -run 'TestOracle' ./internal/sim/

# The parallel Phase-1 engine's determinism pins under the race detector:
# core's seed × worker-count differential matrix and the service-level
# batch/incremental equivalence tests.
par-race:
	$(GO) test -race -run 'TestSchedulePar|TestAdmitBatchParMatchesSequential|TestIncrementalMatchesBatch' ./internal/core/ ./internal/service/

# End-to-end daemon smoke test: build fedschedd, boot it on a random port,
# admit Example 1 (accepted) and a 3-wide high-density task (3-processor
# Phase-1 grant), then SIGTERM and assert a clean drain.
serve-smoke:
	$(GO) run ./scripts/servesmoke

# Observability smoke test: boot fedschedd with -v/-audit/-debug-addr, scrape
# the Prometheus exposition, admit with ?trace=1 asserting the inline decision
# trace, pull a pprof profile from the debug listener, and check the audit log.
obs-smoke:
	$(GO) run ./scripts/obssmoke

# Regenerate the EXPERIMENTS.md measurement body (full scale; several minutes).
experiments:
	$(GO) run ./cmd/experiments -plot -csv results -o report.md

experiments-quick:
	$(GO) run ./cmd/experiments -quick -plot

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/avionics
	$(GO) run ./examples/anomaly
	$(GO) run ./examples/speedupbound
	$(GO) run ./examples/pipeline

clean:
	rm -f report.md test_output.txt bench_output.txt

# fedsched — reproduction of Baruah, DATE 2015.
# Stdlib-only Go; all targets are thin wrappers over the go tool.

GO ?= go

.PHONY: all check build vet test test-short test-race cover bench fuzz fuzz-smoke oracle-race par-race shard-race partition-race policy-race typed-race serve-smoke obs-smoke shard-bench policy-bench perf-gate perf-baseline experiments experiments-quick examples clean

all: build vet test

# What CI runs (.github/workflows/ci.yml): vet + build + race-enabled tests,
# the differential oracle under the race detector, a fuzzing smoke pass, the
# shard/durability suite under the race detector, the admission-policy layer
# under the race detector, the typed processor model under the race detector,
# an end-to-end boot/admit/drain check of the fedschedd daemon, a smoke test
# of its observability surface (/metrics, pprof, ?trace=1, flight recorder,
# audit log), and the continuous perf-regression gate over the pinned
# benchmark set.
check: vet build test-race oracle-race par-race shard-race partition-race policy-race typed-race fuzz-smoke serve-smoke obs-smoke perf-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One benchmark per evaluation experiment (E1–E21) plus package micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing sessions over the decoders and the QPA cross-check.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshalJSON -fuzztime=30s ./internal/dag/
	$(GO) test -fuzz=FuzzBuilder -fuzztime=30s ./internal/dag/
	$(GO) test -fuzz=FuzzExactVsNaive -fuzztime=30s ./internal/dbf/
	$(GO) test -fuzz=FuzzDBFStar -fuzztime=30s ./internal/dbf/
	$(GO) test -fuzz=FuzzVerifyAllocation -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzTaskHash -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzPartitionState -fuzztime=30s ./internal/partition/

# CI smoke pass over the property fuzz targets (30 s each).
fuzz-smoke:
	$(GO) test -fuzz=FuzzDBFStar -fuzztime=30s ./internal/dbf/
	$(GO) test -fuzz=FuzzVerifyAllocation -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzPartitionState -fuzztime=30s ./internal/partition/

# The fast-vs-reference differential oracle under the race detector.
oracle-race:
	$(GO) test -race -run 'TestOracle' ./internal/sim/

# The parallel Phase-1 engine's determinism pins under the race detector:
# core's seed × worker-count differential matrix and the service-level
# batch/incremental equivalence tests.
par-race:
	$(GO) test -race -run 'TestSchedulePar|TestAdmitBatchParMatchesSequential|TestIncrementalMatchesBatch' ./internal/core/ ./internal/service/

# The sharded-router and WAL/snapshot durability suite under the race
# detector: pre-refactor golden differentials through the router, kill/restart
# recovery byte-identity, torn-write WAL sweeps, multi-shard isolation.
shard-race:
	$(GO) test -race -run 'TestRouter|TestGoldenDifferential|TestShard|TestMultiShard|TestFleet|TestHashRing|TestRecovery' ./internal/service/
	$(GO) test -race ./internal/store/

# The incremental Phase-2 partition state's byte-identity harness under the
# race detector: the seed × heuristic × admission-test differential matrix,
# the Admit∘Remove inverse property, the core AdmitLow/RemoveLow/VerifyDelta
# differentials, and the service twin-server walks (warm vs FullRepartition).
partition-race:
	$(GO) test -race -run 'TestPartitionState|TestState' ./internal/partition/
	$(GO) test -race -run 'TestAdmitRemoveLow|TestRemoveLow|TestVerifyDelta' ./internal/core/
	$(GO) test -race -run 'TestWarmPath|TestServiceStateRandomWalk|TestEncodeFast' ./internal/service/

# The pluggable admission-policy layer under the race detector: the
# semi-federated and reservation property suites (service-lemma sizing,
# acceptance dominance over strict FEDCONS, verifier rejection of mutated
# budgets and servers), the 20-seed CLI differential pinning -policy=fedcons
# byte-identical to the default invocation, the daemon's policy-pinned
# durability (banner, snapshot header, recovery refusal), and the E22
# dominance certification at quick scale.
policy-race:
	$(GO) test -race ./internal/semifed/ ./internal/reservation/
	$(GO) test -race -run 'TestPolicy' ./cmd/fedsched/ ./cmd/fedschedd/ ./cmd/analyze/
	$(GO) test -race -run 'TestConfigValidatePolicy|TestE22' ./internal/exp/

# The typed (heterogeneous) processor model under the race detector: the
# typed list-scheduling engine properties, the typed MINPROCS metamorphic
# suite (edge-order invariance, type-label swap mirror, untyped degeneracy),
# the typed hash sensitivity pins, the typed differential oracle (fast vs
# reference engine with per-slice type audits), the 20-seed CLI differential
# pinning single-type -policy=typed byte-identical to strict -policy=fedcons,
# and the E23 type-mix certification at quick scale.
typed-race:
	$(GO) test -race -run 'TestRunTyped|TestTypedProcBase|TestValidateTyped' ./internal/listsched/
	$(GO) test -race -run 'TestMinprocsTyped|TestTaskHashTypeSensitivity' ./internal/core/
	$(GO) test -race -run 'TestOracleTyped' ./internal/sim/
	$(GO) test -race -run 'TestTyped' ./cmd/fedsched/ ./cmd/fedschedd/ ./cmd/analyze/
	$(GO) test -race -run 'TestE23' ./internal/exp/

# End-to-end daemon smoke test: build fedschedd, boot it on a random port,
# admit Example 1 (accepted) and a 3-wide high-density task (3-processor
# Phase-1 grant), then SIGTERM and assert a clean drain. Followed by the
# crash-recovery smoke: admit with -wal-dir, kill -9, restart on the same
# directory, assert a byte-identical allocation and a prewarmed Phase-1 cache.
serve-smoke:
	$(GO) run ./scripts/servesmoke

# Shared-nothing scaling sweep: boot fedschedd at -shards 1, 4 and 8, drive
# each with the built-in cross-cluster load generator, and record
# admissions/sec + latency quantiles into results/timing_shards.json.
shard-bench:
	$(GO) run ./scripts/shardbench

# Policy benchmark: time cold and warm admissions under each -policy
# (fedcons, semi, reservation) on a fixed workload and record the medians
# into results/timing_policy.json.
policy-bench:
	$(GO) run ./scripts/policybench

# Observability smoke test: boot fedschedd with -v/-audit/-debug-addr, scrape
# the Prometheus exposition, admit with ?trace=1 asserting the inline decision
# trace, pull a pprof profile from the debug listener, and check the audit log.
obs-smoke:
	$(GO) run ./scripts/obssmoke

# Continuous perf-regression gate: run the pinned benchmark set (medians over
# -count 5), compare against results/bench_baseline.json, fail on a >25%
# slowdown, and append the run to results/bench_history.jsonl. On a host
# whose fingerprint differs from the baseline's the gate is advisory.
perf-gate:
	$(GO) run ./scripts/perfgate

# Re-record the committed perf baseline from this host's medians.
perf-baseline:
	$(GO) run ./scripts/perfgate -update

# Regenerate the EXPERIMENTS.md measurement body (full scale; several minutes).
experiments:
	$(GO) run ./cmd/experiments -plot -csv results -o report.md

experiments-quick:
	$(GO) run ./cmd/experiments -quick -plot

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/avionics
	$(GO) run ./examples/anomaly
	$(GO) run ./examples/speedupbound
	$(GO) run ./examples/pipeline

clean:
	rm -f report.md test_output.txt bench_output.txt
